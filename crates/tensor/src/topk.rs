//! Exact top-k selection by absolute value.
//!
//! Sparsification in STC and GlueFL is the `top_q(·)` operator: keep the `k`
//! coordinates of a delta with the largest magnitudes. The kernel here is a
//! two-pass threshold-count selection over a reusable scratch arena:
//!
//! 1. **Candidate pass** — the scope's candidate positions are enumerated
//!    at word level (`u64` words walked with `trailing_zeros`, so an
//!    `Outside` scope over a dense mask costs `O(d/64 + candidates)`
//!    instead of `d` per-bit tests) and their magnitude keys are packed
//!    into a flat `f32` arena.
//! 2. **Threshold** — introselect (`select_nth_unstable_by`, O(n) average)
//!    over the flat keys finds the k-th largest magnitude. Selecting over
//!    contiguous keys instead of indices avoids an indirect `values[i]`
//!    load per comparison.
//! 3. **Emit pass** — candidates are re-walked in increasing position
//!    order; every key above the threshold is emitted, and ties *at* the
//!    threshold fill the remaining slots smallest-index-first. The output
//!    is therefore already sorted — no final sort — and the tie-break
//!    (magnitude, then smaller index) is identical to a full stable
//!    ranking, so results are reproducible across runs and platforms.
//!
//! NaN magnitudes are mapped below every finite magnitude before any
//! comparison, in both passes, so the selection is total and exact.
//!
//! All allocation lives in [`TopKScratch`]; the `*_into` entry points are
//! allocation-free after warm-up, which is what the per-round hot paths
//! (`Strategy::compress` / `Strategy::aggregate`) use.

use crate::BitMask;

/// Restricts which coordinates a top-k selection may choose from.
///
/// GlueFL's client masking (Algorithm 3 line 17) selects the unique local
/// gradient from positions *outside* the shared mask, i.e. `¬M_t ⊙ Δ`; the
/// server-side mask update (line 26) selects over all positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopKScope<'a> {
    /// Consider every coordinate.
    All,
    /// Consider only coordinates covered by the mask.
    Inside(&'a BitMask),
    /// Consider only coordinates *not* covered by the mask.
    Outside(&'a BitMask),
}

/// Reusable buffers for [`top_k_abs_masked_into`].
///
/// Owning one `TopKScratch` per simulation (or per thread) makes repeated
/// top-k calls allocation-free once the buffers have grown to the model
/// dimension.
#[derive(Debug, Clone, Default)]
pub struct TopKScratch {
    /// Magnitude keys of the scope's candidates (NaN mapped to −1).
    keys: Vec<f32>,
    /// Output arena for the selected indices.
    out: Vec<usize>,
}

impl TopKScratch {
    /// Creates an empty scratch arena.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a scratch arena pre-sized for dimension-`dim` selections.
    #[must_use]
    pub fn with_capacity(dim: usize) -> Self {
        Self {
            keys: Vec::with_capacity(dim),
            out: Vec::with_capacity(dim),
        }
    }
}

/// The magnitude rank key: NaN sorts below every finite magnitude.
#[inline]
fn key_of(v: f32) -> f32 {
    let m = v.abs();
    if m.is_nan() {
        -1.0
    } else {
        m
    }
}

/// The scope's candidate bits within word `wi` of a `len`-bit space.
#[inline]
fn scope_word(scope: TopKScope<'_>, wi: usize, len: usize) -> u64 {
    let nwords = len.div_ceil(64);
    let tail = len % 64;
    let full = if wi == nwords - 1 && tail != 0 {
        (1u64 << tail) - 1
    } else {
        !0u64
    };
    match scope {
        TopKScope::All => full,
        TopKScope::Inside(m) => m.as_words()[wi],
        TopKScope::Outside(m) => !m.as_words()[wi] & full,
    }
}

/// Walks the scope's candidate positions within words
/// `[wi_lo, wi_hi)` in increasing order, calling `f(position, key)`.
#[inline]
fn for_each_candidate_in_words(
    values: &[f32],
    scope: TopKScope<'_>,
    wi_lo: usize,
    wi_hi: usize,
    mut f: impl FnMut(usize, f32),
) {
    for wi in wi_lo..wi_hi {
        let mut w = scope_word(scope, wi, values.len());
        let base = wi * 64;
        while w != 0 {
            let i = base + w.trailing_zeros() as usize;
            f(i, key_of(values[i]));
            w &= w - 1;
        }
    }
}

/// Walks the scope's candidate positions in increasing order, calling
/// `f(position, key)` for each.
#[inline]
fn for_each_candidate(values: &[f32], scope: TopKScope<'_>, mut f: impl FnMut(usize, f32)) {
    match scope {
        TopKScope::All => {
            for (i, &v) in values.iter().enumerate() {
                f(i, key_of(v));
            }
        }
        TopKScope::Inside(_) | TopKScope::Outside(_) => {
            for_each_candidate_in_words(values, scope, 0, values.len().div_ceil(64), f);
        }
    }
}

/// Number of candidate positions the scope admits over a `len`-bit space.
fn scope_count(scope: TopKScope<'_>, len: usize) -> usize {
    match scope {
        TopKScope::All => len,
        TopKScope::Inside(m) => m.count_ones(),
        TopKScope::Outside(m) => len - m.count_ones(),
    }
}

/// Minimum value count before the candidate pass shards across the pool.
#[cfg(feature = "parallel")]
const PAR_MIN_KEYS: usize = 1 << 17;
/// Words per parallel candidate-pass job (1 << 14 words = 2²⁰ bits).
#[cfg(feature = "parallel")]
const PAR_KEY_WORDS: usize = 1 << 14;

/// Packs the scope's candidate keys into `keys` in increasing position
/// order — serial, or sharded across the [`gluefl_pool`] for large
/// inputs under the `parallel` feature. The parallel pass gives each job
/// a word range whose candidate count is pre-computed from the scope
/// mask's popcounts, so every job writes a disjoint `keys` sub-slice and
/// the concatenation is exactly the serial order: the packed keys — and
/// therefore the selection — are bit-identical to serial.
fn pack_candidate_keys(values: &[f32], scope: TopKScope<'_>, keys: &mut Vec<f32>) {
    keys.clear();
    #[cfg(feature = "parallel")]
    if values.len() >= PAR_MIN_KEYS {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        if threads > 1 {
            let nwords = values.len().div_ceil(64);
            // Candidate count per word-range job.
            let ranges: Vec<(usize, usize, usize)> = (0..nwords.div_ceil(PAR_KEY_WORDS))
                .map(|j| {
                    let lo = j * PAR_KEY_WORDS;
                    let hi = (lo + PAR_KEY_WORDS).min(nwords);
                    let count: usize = (lo..hi)
                        .map(|wi| scope_word(scope, wi, values.len()).count_ones() as usize)
                        .sum();
                    (lo, hi, count)
                })
                .collect();
            let total: usize = ranges.iter().map(|&(_, _, c)| c).sum();
            keys.resize(total, 0.0);
            let mut jobs = Vec::with_capacity(ranges.len());
            let mut rest: &mut [f32] = keys;
            for (lo, hi, count) in ranges {
                let (chunk, tail) = rest.split_at_mut(count);
                rest = tail;
                jobs.push((lo, hi, chunk));
            }
            gluefl_pool::run(threads, jobs, |(lo, hi, chunk): (_, _, &mut [f32])| {
                let mut at = 0;
                for_each_candidate_in_words(values, scope, lo, hi, |_, key| {
                    chunk[at] = key;
                    at += 1;
                });
                debug_assert_eq!(at, chunk.len());
            });
            return;
        }
    }
    for_each_candidate(values, scope, |_, key| keys.push(key));
}

/// Returns the indices of the `k` largest-magnitude entries of `values`,
/// sorted in increasing index order.
///
/// Ties in magnitude are broken toward the smaller index, which makes the
/// selection deterministic. If `k >= values.len()` every index is returned.
///
/// # Example
///
/// ```
/// let v = [1.0f32, -5.0, 0.0, 5.0, 2.0];
/// // |-5.0| ties with |5.0|; both beat the rest, k=3 adds index 4.
/// assert_eq!(gluefl_tensor::top_k_abs(&v, 3), vec![1, 3, 4]);
/// ```
#[must_use]
pub fn top_k_abs(values: &[f32], k: usize) -> Vec<usize> {
    top_k_abs_masked(values, k, TopKScope::All)
}

/// Like [`top_k_abs`], but restricted to a [`TopKScope`].
///
/// Returns fewer than `k` indices when the scope contains fewer than `k`
/// candidates. NaN magnitudes are treated as smaller than every finite
/// magnitude (they are only selected when nothing else is left).
///
/// Allocates fresh buffers per call; hot paths should hold a
/// [`TopKScratch`] and use [`top_k_abs_masked_into`] instead.
///
/// # Panics
///
/// Panics if a scope mask's length differs from `values.len()`.
///
/// # Example
///
/// ```
/// use gluefl_tensor::{top_k_abs_masked, BitMask, TopKScope};
/// let v = [9.0f32, 1.0, 8.0, 2.0];
/// let m = BitMask::from_indices(4, [0usize, 2]);
/// // Outside the mask only indices 1 and 3 are candidates.
/// assert_eq!(
///     top_k_abs_masked(&v, 1, TopKScope::Outside(&m)),
///     vec![3]
/// );
/// ```
#[must_use]
pub fn top_k_abs_masked(values: &[f32], k: usize, scope: TopKScope<'_>) -> Vec<usize> {
    let mut scratch = TopKScratch::new();
    top_k_abs_masked_into(values, k, scope, &mut scratch).to_vec()
}

/// Allocation-free [`top_k_abs_masked`]: selects into `scratch` and
/// returns the sorted indices as a borrow of its output arena.
///
/// # Panics
///
/// Panics if a scope mask's length differs from `values.len()`.
///
/// # Example
///
/// ```
/// use gluefl_tensor::{top_k_abs_masked_into, TopKScope, TopKScratch};
/// let mut scratch = TopKScratch::new();
/// let v = [1.0f32, -5.0, 0.0, 5.0, 2.0];
/// let idx = top_k_abs_masked_into(&v, 2, TopKScope::All, &mut scratch);
/// assert_eq!(idx, &[1, 3]);
/// ```
pub fn top_k_abs_masked_into<'s>(
    values: &[f32],
    k: usize,
    scope: TopKScope<'_>,
    scratch: &'s mut TopKScratch,
) -> &'s [usize] {
    match scope {
        TopKScope::Inside(m) | TopKScope::Outside(m) => {
            assert_eq!(m.len(), values.len(), "scope mask length mismatch");
        }
        TopKScope::All => {}
    }
    scratch.out.clear();
    if k == 0 {
        return &scratch.out;
    }

    // Pass 1: pack candidate keys into the flat arena (sharded across the
    // pool for large inputs under `parallel`, bit-identical to serial).
    pack_candidate_keys(values, scope, &mut scratch.keys);
    let n = scratch.keys.len();
    if n == 0 {
        return &scratch.out;
    }

    if k >= n {
        // The scope has no more than k candidates: emit them all.
        let out = &mut scratch.out;
        for_each_candidate(values, scope, |i, _| out.push(i));
        return &scratch.out;
    }

    // Introselect the k-th largest key (descending order). Keys are never
    // NaN (mapped to −1 above), so partial_cmp is total here.
    scratch
        .keys
        .select_nth_unstable_by(k - 1, |a, b| b.partial_cmp(a).expect("keys are never NaN"));
    let thr = scratch.keys[k - 1];
    // After partitioning, the first k slots hold the top-k keys (in some
    // order); count how many beat the threshold strictly. The remaining
    // slots go to threshold ties, smallest index first.
    let strictly = scratch.keys[..k].iter().filter(|&&x| x > thr).count();
    let mut ties_left = k - strictly;

    // Pass 2: emit in increasing index order.
    let out = &mut scratch.out;
    for_each_candidate(values, scope, |i, key| {
        if key > thr {
            out.push(i);
        } else if key == thr && ties_left > 0 {
            out.push(i);
            ties_left -= 1;
        }
    });
    debug_assert_eq!(scratch.out.len(), k);
    &scratch.out
}

/// Walks the support∩scope positions in increasing order, calling
/// `f(position, key)` where the key is `key_of` of the position's packed
/// value (`rank` within the support mask indexes `packed`).
#[inline]
fn for_each_packed_candidate(
    support: &BitMask,
    packed: &[f32],
    scope: TopKScope<'_>,
    mut f: impl FnMut(usize, f32),
) {
    let dim = support.len();
    let mut rank = 0usize;
    for (wi, &sw) in support.as_words().iter().enumerate() {
        if sw == 0 {
            continue;
        }
        let cw = scope_word(scope, wi, dim);
        let base = wi * 64;
        let mut w = sw;
        while w != 0 {
            let bit = w.trailing_zeros() as usize;
            if cw >> bit & 1 == 1 {
                f(base + bit, key_of(packed[rank]));
            }
            rank += 1;
            w &= w - 1;
        }
    }
}

/// Top-k by magnitude over a **(support mask, packed values)** pair,
/// bit-identical to running [`top_k_abs_masked_into`] on the equivalent
/// dense vector — the one holding `packed[rank]` at each of the support
/// mask's one-positions and an exact `0.0` everywhere else — without ever
/// materialising that vector.
///
/// The cost is `O(dim/64 + support_nnz)` instead of `O(dim)`: positions
/// outside the support all share the virtual key `0.0`, so the selection
/// only ranks the packed candidates and falls back to counting-based
/// zero/NaN tie fills when fewer than `k` candidates have positive
/// magnitude. This is what lets GlueFL's aggregate run its mask-shift
/// top-k directly over the packed accumulator.
///
/// Ordering, tie-breaks (smaller index first), and NaN handling (selected
/// last) are exactly those of the dense kernel; `k >= scope size` emits
/// every scope position.
///
/// # Panics
///
/// Panics if `packed.len()` differs from the support popcount, or if a
/// scope mask's length differs from `support.len()`.
///
/// # Example
///
/// ```
/// use gluefl_tensor::{top_k_abs_packed_into, BitMask, TopKScope, TopKScratch};
/// let mut scratch = TopKScratch::new();
/// let support = BitMask::from_indices(6, [1usize, 3, 4]);
/// // Virtual dense vector: [0, 2.0, 0, -5.0, 1.0, 0]
/// let idx = top_k_abs_packed_into(&support, &[2.0, -5.0, 1.0], 2, TopKScope::All, &mut scratch);
/// assert_eq!(idx, &[1, 3]);
/// ```
pub fn top_k_abs_packed_into<'s>(
    support: &BitMask,
    packed: &[f32],
    k: usize,
    scope: TopKScope<'_>,
    scratch: &'s mut TopKScratch,
) -> &'s [usize] {
    assert_eq!(
        support.count_ones(),
        packed.len(),
        "packed length must equal the support popcount"
    );
    match scope {
        TopKScope::Inside(m) | TopKScope::Outside(m) => {
            assert_eq!(m.len(), support.len(), "scope mask length mismatch");
        }
        TopKScope::All => {}
    }
    let dim = support.len();
    scratch.out.clear();
    if k == 0 {
        return &scratch.out;
    }
    let total = scope_count(scope, dim);
    if total == 0 {
        return &scratch.out;
    }
    if k >= total {
        // Dense `k >= n` branch: every scope position is emitted.
        let out = &mut scratch.out;
        for wi in 0..dim.div_ceil(64) {
            let mut w = scope_word(scope, wi, dim);
            let base = wi * 64;
            while w != 0 {
                out.push(base + w.trailing_zeros() as usize);
                w &= w - 1;
            }
        }
        return &scratch.out;
    }

    // Pass 1: keys of the support∩scope candidates only; every other
    // scope position carries the virtual key 0.0 and is accounted for by
    // counting, not materialisation.
    scratch.keys.clear();
    let keys = &mut scratch.keys;
    for_each_packed_candidate(support, packed, scope, |_, key| keys.push(key));
    let positives = scratch.keys.iter().filter(|&&x| x > 0.0).count();

    if positives >= k {
        // The k-th largest virtual key is positive, so no zero-valued
        // position outside the support can be selected: the dense
        // selection restricted to the packed candidates is exact. The
        // threshold, strict count, and tie fill are computed exactly as
        // in the dense kernel (zeros and NaNs sort below every positive
        // key, so dropping them changes neither).
        scratch
            .keys
            .select_nth_unstable_by(k - 1, |a, b| b.partial_cmp(a).expect("keys are never NaN"));
        let thr = scratch.keys[k - 1];
        debug_assert!(thr > 0.0);
        let strictly = scratch.keys[..k].iter().filter(|&&x| x > thr).count();
        let mut ties_left = k - strictly;
        let out = &mut scratch.out;
        for_each_packed_candidate(support, packed, scope, |i, key| {
            if key > thr {
                out.push(i);
            } else if key == thr && ties_left > 0 {
                out.push(i);
                ties_left -= 1;
            }
        });
        debug_assert_eq!(scratch.out.len(), k);
        return &scratch.out;
    }

    // Degenerate fill-up: fewer than k positive magnitudes in scope. The
    // dense threshold is 0.0 (zero-key positions fill the remainder,
    // smallest index first) or −1.0 (all zeros consumed too; NaN-key
    // candidates fill up). Walk the scope ascending with virtual keys and
    // stop as soon as both the above-threshold and tie budgets are spent.
    let zero_keys =
        (total - scratch.keys.len()) + scratch.keys.iter().filter(|&&x| x == 0.0).count();
    let (thr, mut ties_left, mut above_left) = if positives + zero_keys >= k {
        (0.0f32, k - positives, positives)
    } else {
        (-1.0f32, k - positives - zero_keys, positives + zero_keys)
    };
    let out = &mut scratch.out;
    let support_words = support.as_words();
    let mut rank_base = 0usize;
    'words: for (wi, &sw) in support_words.iter().enumerate() {
        let base = wi * 64;
        let mut w = scope_word(scope, wi, dim);
        while w != 0 {
            let bit = w.trailing_zeros() as usize;
            let key = if sw >> bit & 1 == 1 {
                let rank = rank_base + (sw & ((1u64 << bit) - 1)).count_ones() as usize;
                key_of(packed[rank])
            } else {
                0.0
            };
            if key > thr {
                out.push(base + bit);
                above_left -= 1;
            } else if key == thr && ties_left > 0 {
                out.push(base + bit);
                ties_left -= 1;
            }
            if above_left == 0 && ties_left == 0 {
                break 'words;
            }
            w &= w - 1;
        }
        rank_base += sw.count_ones() as usize;
    }
    debug_assert_eq!(scratch.out.len(), k);
    &scratch.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Reference implementation: full sort.
    fn top_k_by_sort(values: &[f32], k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..values.len()).collect();
        idx.sort_by(|&a, &b| {
            let ma = if values[a].abs().is_nan() {
                -1.0
            } else {
                values[a].abs()
            };
            let mb = if values[b].abs().is_nan() {
                -1.0
            } else {
                values[b].abs()
            };
            mb.partial_cmp(&ma).unwrap().then(a.cmp(&b))
        });
        idx.truncate(k.min(values.len()));
        idx.sort_unstable();
        idx
    }

    #[test]
    fn matches_sort_reference_on_random_inputs() {
        let mut rng = StdRng::seed_from_u64(11);
        for trial in 0..50 {
            let n = rng.gen_range(1..300);
            let values: Vec<f32> = (0..n).map(|_| rng.gen_range(-5.0..5.0)).collect();
            let k = rng.gen_range(0..=n);
            assert_eq!(
                top_k_abs(&values, k),
                top_k_by_sort(&values, k),
                "trial {trial} n={n} k={k}"
            );
        }
    }

    #[test]
    fn matches_sort_reference_with_many_ties() {
        // Quantized values force heavy magnitude ties, stressing the
        // threshold tie-fill path.
        let mut rng = StdRng::seed_from_u64(13);
        for trial in 0..50 {
            let n = rng.gen_range(1..200);
            let values: Vec<f32> = (0..n).map(|_| (rng.gen_range(-3i32..4)) as f32).collect();
            let k = rng.gen_range(0..=n);
            assert_eq!(
                top_k_abs(&values, k),
                top_k_by_sort(&values, k),
                "trial {trial} n={n} k={k}"
            );
        }
    }

    #[test]
    fn scratch_reuse_is_consistent() {
        let mut scratch = TopKScratch::with_capacity(64);
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..20 {
            let n = rng.gen_range(1..64);
            let values: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let k = rng.gen_range(0..=n);
            let got = top_k_abs_masked_into(&values, k, TopKScope::All, &mut scratch).to_vec();
            assert_eq!(got, top_k_by_sort(&values, k));
        }
    }

    #[test]
    fn k_zero_is_empty() {
        assert!(top_k_abs(&[1.0, 2.0], 0).is_empty());
    }

    #[test]
    fn k_ge_len_returns_all() {
        assert_eq!(top_k_abs(&[1.0, 2.0], 5), vec![0, 1]);
    }

    #[test]
    fn empty_input() {
        assert!(top_k_abs(&[], 3).is_empty());
    }

    #[test]
    fn ties_break_toward_smaller_index() {
        let v = [2.0f32, -2.0, 2.0, 2.0];
        assert_eq!(top_k_abs(&v, 2), vec![0, 1]);
    }

    #[test]
    fn nan_is_selected_last() {
        let v = [f32::NAN, 1.0, 0.5];
        assert_eq!(top_k_abs(&v, 2), vec![1, 2]);
        assert_eq!(top_k_abs(&v, 3), vec![0, 1, 2]);
    }

    #[test]
    fn all_nan_input_selects_by_index() {
        let v = [f32::NAN, f32::NAN, f32::NAN];
        assert_eq!(top_k_abs(&v, 2), vec![0, 1]);
    }

    #[test]
    fn inside_scope_restricts_candidates() {
        let v = [10.0f32, 9.0, 8.0, 7.0];
        let m = BitMask::from_indices(4, [2usize, 3]);
        assert_eq!(top_k_abs_masked(&v, 1, TopKScope::Inside(&m)), vec![2]);
    }

    #[test]
    fn outside_scope_excludes_mask() {
        let v = [10.0f32, 9.0, 8.0, 7.0];
        let m = BitMask::from_indices(4, [0usize]);
        assert_eq!(top_k_abs_masked(&v, 2, TopKScope::Outside(&m)), vec![1, 2]);
    }

    #[test]
    fn scoped_selection_matches_filtered_reference() {
        let mut rng = StdRng::seed_from_u64(23);
        for trial in 0..40 {
            let n = rng.gen_range(1..300);
            let values: Vec<f32> = (0..n).map(|_| rng.gen_range(-5.0..5.0)).collect();
            let density = rng.gen_range(0.0..1.0);
            let mask = BitMask::from_indices(n, (0..n).filter(|_| rng.gen::<f64>() < density));
            let k = rng.gen_range(0..=n);

            // Reference: rank only the scope's candidates via full sort.
            let reference = |keep: &dyn Fn(usize) -> bool| -> Vec<usize> {
                let cands: Vec<usize> = (0..n).filter(|&i| keep(i)).collect();
                let mut idx = cands.clone();
                idx.sort_by(|&a, &b| {
                    let ma = if values[a].abs().is_nan() {
                        -1.0
                    } else {
                        values[a].abs()
                    };
                    let mb = if values[b].abs().is_nan() {
                        -1.0
                    } else {
                        values[b].abs()
                    };
                    mb.partial_cmp(&ma).unwrap().then(a.cmp(&b))
                });
                idx.truncate(k.min(cands.len()));
                idx.sort_unstable();
                idx
            };

            assert_eq!(
                top_k_abs_masked(&values, k, TopKScope::Inside(&mask)),
                reference(&|i| mask.get(i)),
                "trial {trial} inside n={n} k={k}"
            );
            assert_eq!(
                top_k_abs_masked(&values, k, TopKScope::Outside(&mask)),
                reference(&|i| !mask.get(i)),
                "trial {trial} outside n={n} k={k}"
            );
        }
    }

    #[test]
    fn scope_with_fewer_candidates_than_k() {
        let v = [1.0f32, 2.0, 3.0];
        let m = BitMask::from_indices(3, [1usize]);
        assert_eq!(top_k_abs_masked(&v, 5, TopKScope::Inside(&m)), vec![1]);
    }

    #[test]
    fn negative_values_use_magnitude() {
        let v = [-10.0f32, 1.0, 2.0];
        assert_eq!(top_k_abs(&v, 1), vec![0]);
    }

    #[test]
    #[should_panic(expected = "scope mask length mismatch")]
    fn scope_length_mismatch_panics() {
        let m = BitMask::zeros(2);
        let _ = top_k_abs_masked(&[1.0, 2.0, 3.0], 1, TopKScope::Inside(&m));
    }

    /// Expands a (support, packed) pair into its equivalent dense vector.
    fn densify(support: &BitMask, packed: &[f32]) -> Vec<f32> {
        let mut dense = vec![0.0f32; support.len()];
        let mut rank = 0;
        for (i, slot) in dense.iter_mut().enumerate() {
            if support.get(i) {
                *slot = packed[rank];
                rank += 1;
            }
        }
        assert_eq!(rank, packed.len());
        dense
    }

    #[test]
    fn packed_matches_dense_twin_across_scopes() {
        let mut rng = StdRng::seed_from_u64(29);
        let mut packed_scratch = TopKScratch::new();
        let mut dense_scratch = TopKScratch::new();
        for trial in 0..60 {
            let n = rng.gen_range(1..300);
            let density = rng.gen_range(0.0..1.0);
            let support = BitMask::from_indices(n, (0..n).filter(|_| rng.gen::<f64>() < density));
            // Values with heavy ties, exact zeros, signed zeros, and NaNs
            // so every selection path (positive threshold, zero fill-up,
            // NaN fill-up) is exercised.
            let packed: Vec<f32> = (0..support.count_ones())
                .map(|_| match rng.gen_range(0..6) {
                    0 => 0.0,
                    1 => -0.0,
                    2 => f32::NAN,
                    3 => rng.gen_range(-3i32..4) as f32,
                    _ => rng.gen_range(-5.0..5.0),
                })
                .collect();
            let dense = densify(&support, &packed);
            let scope_mask =
                BitMask::from_indices(n, (0..n).filter(|_| rng.gen::<f64>() < density));
            for k in [0, 1, n / 7, n / 2, n.saturating_sub(1), n, n + 3] {
                for (name, scope) in [
                    ("all", TopKScope::All),
                    ("inside", TopKScope::Inside(&scope_mask)),
                    ("outside", TopKScope::Outside(&scope_mask)),
                ] {
                    let got =
                        top_k_abs_packed_into(&support, &packed, k, scope, &mut packed_scratch)
                            .to_vec();
                    let want = top_k_abs_masked_into(&dense, k, scope, &mut dense_scratch).to_vec();
                    assert_eq!(got, want, "trial {trial} scope {name} n={n} k={k}");
                }
            }
        }
    }

    #[test]
    fn packed_with_empty_support_selects_zero_positions() {
        // All virtual keys are 0.0: the fill-up path must pick the
        // smallest scope indices, exactly like the dense kernel.
        let support = BitMask::zeros(10);
        let mut scratch = TopKScratch::new();
        let got = top_k_abs_packed_into(&support, &[], 3, TopKScope::All, &mut scratch);
        assert_eq!(got, &[0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "packed length must equal the support popcount")]
    fn packed_length_mismatch_panics() {
        let support = BitMask::from_indices(4, [0usize, 2]);
        let mut scratch = TopKScratch::new();
        let _ = top_k_abs_packed_into(&support, &[1.0], 1, TopKScope::All, &mut scratch);
    }

    /// The pool-sharded candidate pass must select exactly what the
    /// serial walk selects: inputs above `PAR_MIN_KEYS` take the parallel
    /// pass, and the scoped reference below recomputes the selection with
    /// an explicitly serial key pack.
    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_candidate_pass_is_bit_identical_to_serial() {
        let mut rng = StdRng::seed_from_u64(31);
        let n = super::PAR_MIN_KEYS + 4321; // off word-boundary tail
        let values: Vec<f32> = (0..n)
            .map(|_| match rng.gen_range(0..8) {
                0 => 0.0,
                1 => f32::NAN,
                2 => rng.gen_range(-2i32..3) as f32,
                _ => rng.gen_range(-1.0..1.0),
            })
            .collect();
        let mask = BitMask::from_indices(n, (0..n).filter(|_| rng.gen::<f64>() < 0.2));
        let mut scratch = TopKScratch::new();
        for k in [1, 97, n / 50, n / 3] {
            for (name, scope) in [
                ("all", TopKScope::All),
                ("inside", TopKScope::Inside(&mask)),
                ("outside", TopKScope::Outside(&mask)),
            ] {
                // Serial reference: pack keys with the plain walk, then
                // run the same threshold + emit logic via a sort-based
                // top-k over candidate (key, index) pairs.
                let mut cands: Vec<(usize, f32)> = Vec::new();
                super::for_each_candidate(&values, scope, |i, key| cands.push((i, key)));
                let mut ranked = cands.clone();
                ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
                let mut want: Vec<usize> = ranked
                    .iter()
                    .take(k.min(cands.len()))
                    .map(|c| c.0)
                    .collect();
                want.sort_unstable();

                let got = top_k_abs_masked_into(&values, k, scope, &mut scratch).to_vec();
                assert_eq!(got, want, "scope {name} k={k}");
            }
        }
    }
}
