//! Exact top-k selection by absolute value.
//!
//! Sparsification in STC and GlueFL is the `top_q(·)` operator: keep the `k`
//! coordinates of a delta with the largest magnitudes. We implement an exact
//! selection via `select_nth_unstable_by` (introselect, O(d) average) with a
//! deterministic magnitude-then-index tie-break, so results are reproducible
//! across runs and platforms regardless of the unstable partition order.

use crate::BitMask;

/// Restricts which coordinates a top-k selection may choose from.
///
/// GlueFL's client masking (Algorithm 3 line 17) selects the unique local
/// gradient from positions *outside* the shared mask, i.e. `¬M_t ⊙ Δ`; the
/// server-side mask update (line 26) selects over all positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopKScope<'a> {
    /// Consider every coordinate.
    All,
    /// Consider only coordinates covered by the mask.
    Inside(&'a BitMask),
    /// Consider only coordinates *not* covered by the mask.
    Outside(&'a BitMask),
}

/// Returns the indices of the `k` largest-magnitude entries of `values`,
/// sorted in increasing index order.
///
/// Ties in magnitude are broken toward the smaller index, which makes the
/// selection deterministic. If `k >= values.len()` every index is returned.
///
/// # Example
///
/// ```
/// let v = [1.0f32, -5.0, 0.0, 5.0, 2.0];
/// // |-5.0| ties with |5.0|; both beat the rest, k=3 adds index 4.
/// assert_eq!(gluefl_tensor::top_k_abs(&v, 3), vec![1, 3, 4]);
/// ```
#[must_use]
pub fn top_k_abs(values: &[f32], k: usize) -> Vec<usize> {
    top_k_abs_masked(values, k, TopKScope::All)
}

/// Like [`top_k_abs`], but restricted to a [`TopKScope`].
///
/// Returns fewer than `k` indices when the scope contains fewer than `k`
/// candidates. NaN magnitudes are treated as smaller than every finite
/// magnitude (they are only selected when nothing else is left).
///
/// # Panics
///
/// Panics if a scope mask's length differs from `values.len()`.
///
/// # Example
///
/// ```
/// use gluefl_tensor::{top_k_abs_masked, BitMask, TopKScope};
/// let v = [9.0f32, 1.0, 8.0, 2.0];
/// let m = BitMask::from_indices(4, [0usize, 2]);
/// // Outside the mask only indices 1 and 3 are candidates.
/// assert_eq!(
///     top_k_abs_masked(&v, 1, TopKScope::Outside(&m)),
///     vec![3]
/// );
/// ```
#[must_use]
pub fn top_k_abs_masked(values: &[f32], k: usize, scope: TopKScope<'_>) -> Vec<usize> {
    let mut candidates: Vec<u32> = match scope {
        TopKScope::All => (0..values.len() as u32).collect(),
        TopKScope::Inside(m) => {
            assert_eq!(m.len(), values.len(), "scope mask length mismatch");
            m.iter_ones().map(|i| i as u32).collect()
        }
        TopKScope::Outside(m) => {
            assert_eq!(m.len(), values.len(), "scope mask length mismatch");
            (0..values.len())
                .filter(|&i| !m.get(i))
                .map(|i| i as u32)
                .collect()
        }
    };
    if k == 0 || candidates.is_empty() {
        return Vec::new();
    }
    if k >= candidates.len() {
        return candidates.into_iter().map(|i| i as usize).collect();
    }

    // Rank key: larger magnitude first; ties toward the smaller index.
    // NaN is mapped below every finite magnitude.
    let key = |i: u32| -> (f32, std::cmp::Reverse<u32>) {
        let m = values[i as usize].abs();
        (if m.is_nan() { -1.0 } else { m }, std::cmp::Reverse(i))
    };
    let cmp = |a: &u32, b: &u32| {
        let (ma, ia) = key(*a);
        let (mb, ib) = key(*b);
        // total order: descending magnitude, then ascending index
        mb.partial_cmp(&ma)
            .expect("magnitudes are never NaN after mapping")
            .then(ib.cmp(&ia))
    };
    candidates.select_nth_unstable_by(k - 1, cmp);
    candidates.truncate(k);
    candidates.sort_unstable();
    candidates.into_iter().map(|i| i as usize).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Reference implementation: full sort.
    fn top_k_by_sort(values: &[f32], k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..values.len()).collect();
        idx.sort_by(|&a, &b| {
            let ma = if values[a].abs().is_nan() { -1.0 } else { values[a].abs() };
            let mb = if values[b].abs().is_nan() { -1.0 } else { values[b].abs() };
            mb.partial_cmp(&ma).unwrap().then(a.cmp(&b))
        });
        idx.truncate(k.min(values.len()));
        idx.sort_unstable();
        idx
    }

    #[test]
    fn matches_sort_reference_on_random_inputs() {
        let mut rng = StdRng::seed_from_u64(11);
        for trial in 0..50 {
            let n = rng.gen_range(1..300);
            let values: Vec<f32> = (0..n).map(|_| rng.gen_range(-5.0..5.0)).collect();
            let k = rng.gen_range(0..=n);
            assert_eq!(
                top_k_abs(&values, k),
                top_k_by_sort(&values, k),
                "trial {trial} n={n} k={k}"
            );
        }
    }

    #[test]
    fn k_zero_is_empty() {
        assert!(top_k_abs(&[1.0, 2.0], 0).is_empty());
    }

    #[test]
    fn k_ge_len_returns_all() {
        assert_eq!(top_k_abs(&[1.0, 2.0], 5), vec![0, 1]);
    }

    #[test]
    fn empty_input() {
        assert!(top_k_abs(&[], 3).is_empty());
    }

    #[test]
    fn ties_break_toward_smaller_index() {
        let v = [2.0f32, -2.0, 2.0, 2.0];
        assert_eq!(top_k_abs(&v, 2), vec![0, 1]);
    }

    #[test]
    fn nan_is_selected_last() {
        let v = [f32::NAN, 1.0, 0.5];
        assert_eq!(top_k_abs(&v, 2), vec![1, 2]);
        assert_eq!(top_k_abs(&v, 3), vec![0, 1, 2]);
    }

    #[test]
    fn inside_scope_restricts_candidates() {
        let v = [10.0f32, 9.0, 8.0, 7.0];
        let m = BitMask::from_indices(4, [2usize, 3]);
        assert_eq!(
            top_k_abs_masked(&v, 1, TopKScope::Inside(&m)),
            vec![2]
        );
    }

    #[test]
    fn outside_scope_excludes_mask() {
        let v = [10.0f32, 9.0, 8.0, 7.0];
        let m = BitMask::from_indices(4, [0usize]);
        assert_eq!(
            top_k_abs_masked(&v, 2, TopKScope::Outside(&m)),
            vec![1, 2]
        );
    }

    #[test]
    fn scope_with_fewer_candidates_than_k() {
        let v = [1.0f32, 2.0, 3.0];
        let m = BitMask::from_indices(3, [1usize]);
        assert_eq!(
            top_k_abs_masked(&v, 5, TopKScope::Inside(&m)),
            vec![1]
        );
    }

    #[test]
    fn negative_values_use_magnitude() {
        let v = [-10.0f32, 1.0, 2.0];
        assert_eq!(top_k_abs(&v, 1), vec![0]);
    }

    #[test]
    #[should_panic(expected = "scope mask length mismatch")]
    fn scope_length_mismatch_panics() {
        let m = BitMask::zeros(2);
        let _ = top_k_abs_masked(&[1.0, 2.0, 3.0], 1, TopKScope::Inside(&m));
    }
}
