//! Exact top-k selection by absolute value.
//!
//! Sparsification in STC and GlueFL is the `top_q(·)` operator: keep the `k`
//! coordinates of a delta with the largest magnitudes. The kernel here is a
//! two-pass threshold-count selection over a reusable scratch arena:
//!
//! 1. **Candidate pass** — the scope's candidate positions are enumerated
//!    at word level (`u64` words walked with `trailing_zeros`, so an
//!    `Outside` scope over a dense mask costs `O(d/64 + candidates)`
//!    instead of `d` per-bit tests) and their magnitude keys are packed
//!    into a flat `f32` arena.
//! 2. **Threshold** — introselect (`select_nth_unstable_by`, O(n) average)
//!    over the flat keys finds the k-th largest magnitude. Selecting over
//!    contiguous keys instead of indices avoids an indirect `values[i]`
//!    load per comparison.
//! 3. **Emit pass** — candidates are re-walked in increasing position
//!    order; every key above the threshold is emitted, and ties *at* the
//!    threshold fill the remaining slots smallest-index-first. The output
//!    is therefore already sorted — no final sort — and the tie-break
//!    (magnitude, then smaller index) is identical to a full stable
//!    ranking, so results are reproducible across runs and platforms.
//!
//! NaN magnitudes are mapped below every finite magnitude before any
//! comparison, in both passes, so the selection is total and exact.
//!
//! All allocation lives in [`TopKScratch`]; the `*_into` entry points are
//! allocation-free after warm-up, which is what the per-round hot paths
//! (`Strategy::compress` / `Strategy::aggregate`) use.

use crate::BitMask;

/// Restricts which coordinates a top-k selection may choose from.
///
/// GlueFL's client masking (Algorithm 3 line 17) selects the unique local
/// gradient from positions *outside* the shared mask, i.e. `¬M_t ⊙ Δ`; the
/// server-side mask update (line 26) selects over all positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopKScope<'a> {
    /// Consider every coordinate.
    All,
    /// Consider only coordinates covered by the mask.
    Inside(&'a BitMask),
    /// Consider only coordinates *not* covered by the mask.
    Outside(&'a BitMask),
}

/// Reusable buffers for [`top_k_abs_masked_into`].
///
/// Owning one `TopKScratch` per simulation (or per thread) makes repeated
/// top-k calls allocation-free once the buffers have grown to the model
/// dimension.
#[derive(Debug, Clone, Default)]
pub struct TopKScratch {
    /// Magnitude keys of the scope's candidates (NaN mapped to −1).
    keys: Vec<f32>,
    /// Output arena for the selected indices.
    out: Vec<usize>,
}

impl TopKScratch {
    /// Creates an empty scratch arena.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a scratch arena pre-sized for dimension-`dim` selections.
    #[must_use]
    pub fn with_capacity(dim: usize) -> Self {
        Self {
            keys: Vec::with_capacity(dim),
            out: Vec::with_capacity(dim),
        }
    }
}

/// The magnitude rank key: NaN sorts below every finite magnitude.
#[inline]
fn key_of(v: f32) -> f32 {
    let m = v.abs();
    if m.is_nan() {
        -1.0
    } else {
        m
    }
}

/// Walks the scope's candidate positions in increasing order, calling
/// `f(position, key)` for each.
#[inline]
fn for_each_candidate(values: &[f32], scope: TopKScope<'_>, mut f: impl FnMut(usize, f32)) {
    match scope {
        TopKScope::All => {
            for (i, &v) in values.iter().enumerate() {
                f(i, key_of(v));
            }
        }
        TopKScope::Inside(m) => {
            for (wi, &word) in m.as_words().iter().enumerate() {
                let mut w = word;
                let base = wi * 64;
                while w != 0 {
                    let i = base + w.trailing_zeros() as usize;
                    f(i, key_of(values[i]));
                    w &= w - 1;
                }
            }
        }
        TopKScope::Outside(m) => {
            let words = m.as_words();
            let tail = m.len() % 64;
            for (wi, &word) in words.iter().enumerate() {
                let mut w = !word;
                if wi == words.len() - 1 && tail != 0 {
                    w &= (1u64 << tail) - 1;
                }
                let base = wi * 64;
                while w != 0 {
                    let i = base + w.trailing_zeros() as usize;
                    f(i, key_of(values[i]));
                    w &= w - 1;
                }
            }
        }
    }
}

/// Returns the indices of the `k` largest-magnitude entries of `values`,
/// sorted in increasing index order.
///
/// Ties in magnitude are broken toward the smaller index, which makes the
/// selection deterministic. If `k >= values.len()` every index is returned.
///
/// # Example
///
/// ```
/// let v = [1.0f32, -5.0, 0.0, 5.0, 2.0];
/// // |-5.0| ties with |5.0|; both beat the rest, k=3 adds index 4.
/// assert_eq!(gluefl_tensor::top_k_abs(&v, 3), vec![1, 3, 4]);
/// ```
#[must_use]
pub fn top_k_abs(values: &[f32], k: usize) -> Vec<usize> {
    top_k_abs_masked(values, k, TopKScope::All)
}

/// Like [`top_k_abs`], but restricted to a [`TopKScope`].
///
/// Returns fewer than `k` indices when the scope contains fewer than `k`
/// candidates. NaN magnitudes are treated as smaller than every finite
/// magnitude (they are only selected when nothing else is left).
///
/// Allocates fresh buffers per call; hot paths should hold a
/// [`TopKScratch`] and use [`top_k_abs_masked_into`] instead.
///
/// # Panics
///
/// Panics if a scope mask's length differs from `values.len()`.
///
/// # Example
///
/// ```
/// use gluefl_tensor::{top_k_abs_masked, BitMask, TopKScope};
/// let v = [9.0f32, 1.0, 8.0, 2.0];
/// let m = BitMask::from_indices(4, [0usize, 2]);
/// // Outside the mask only indices 1 and 3 are candidates.
/// assert_eq!(
///     top_k_abs_masked(&v, 1, TopKScope::Outside(&m)),
///     vec![3]
/// );
/// ```
#[must_use]
pub fn top_k_abs_masked(values: &[f32], k: usize, scope: TopKScope<'_>) -> Vec<usize> {
    let mut scratch = TopKScratch::new();
    top_k_abs_masked_into(values, k, scope, &mut scratch).to_vec()
}

/// Allocation-free [`top_k_abs_masked`]: selects into `scratch` and
/// returns the sorted indices as a borrow of its output arena.
///
/// # Panics
///
/// Panics if a scope mask's length differs from `values.len()`.
///
/// # Example
///
/// ```
/// use gluefl_tensor::{top_k_abs_masked_into, TopKScope, TopKScratch};
/// let mut scratch = TopKScratch::new();
/// let v = [1.0f32, -5.0, 0.0, 5.0, 2.0];
/// let idx = top_k_abs_masked_into(&v, 2, TopKScope::All, &mut scratch);
/// assert_eq!(idx, &[1, 3]);
/// ```
pub fn top_k_abs_masked_into<'s>(
    values: &[f32],
    k: usize,
    scope: TopKScope<'_>,
    scratch: &'s mut TopKScratch,
) -> &'s [usize] {
    match scope {
        TopKScope::Inside(m) | TopKScope::Outside(m) => {
            assert_eq!(m.len(), values.len(), "scope mask length mismatch");
        }
        TopKScope::All => {}
    }
    scratch.out.clear();
    if k == 0 {
        return &scratch.out;
    }

    // Pass 1: pack candidate keys into the flat arena.
    scratch.keys.clear();
    let keys = &mut scratch.keys;
    for_each_candidate(values, scope, |_, key| keys.push(key));
    let n = scratch.keys.len();
    if n == 0 {
        return &scratch.out;
    }

    if k >= n {
        // The scope has no more than k candidates: emit them all.
        let out = &mut scratch.out;
        for_each_candidate(values, scope, |i, _| out.push(i));
        return &scratch.out;
    }

    // Introselect the k-th largest key (descending order). Keys are never
    // NaN (mapped to −1 above), so partial_cmp is total here.
    scratch
        .keys
        .select_nth_unstable_by(k - 1, |a, b| b.partial_cmp(a).expect("keys are never NaN"));
    let thr = scratch.keys[k - 1];
    // After partitioning, the first k slots hold the top-k keys (in some
    // order); count how many beat the threshold strictly. The remaining
    // slots go to threshold ties, smallest index first.
    let strictly = scratch.keys[..k].iter().filter(|&&x| x > thr).count();
    let mut ties_left = k - strictly;

    // Pass 2: emit in increasing index order.
    let out = &mut scratch.out;
    for_each_candidate(values, scope, |i, key| {
        if key > thr {
            out.push(i);
        } else if key == thr && ties_left > 0 {
            out.push(i);
            ties_left -= 1;
        }
    });
    debug_assert_eq!(scratch.out.len(), k);
    &scratch.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Reference implementation: full sort.
    fn top_k_by_sort(values: &[f32], k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..values.len()).collect();
        idx.sort_by(|&a, &b| {
            let ma = if values[a].abs().is_nan() {
                -1.0
            } else {
                values[a].abs()
            };
            let mb = if values[b].abs().is_nan() {
                -1.0
            } else {
                values[b].abs()
            };
            mb.partial_cmp(&ma).unwrap().then(a.cmp(&b))
        });
        idx.truncate(k.min(values.len()));
        idx.sort_unstable();
        idx
    }

    #[test]
    fn matches_sort_reference_on_random_inputs() {
        let mut rng = StdRng::seed_from_u64(11);
        for trial in 0..50 {
            let n = rng.gen_range(1..300);
            let values: Vec<f32> = (0..n).map(|_| rng.gen_range(-5.0..5.0)).collect();
            let k = rng.gen_range(0..=n);
            assert_eq!(
                top_k_abs(&values, k),
                top_k_by_sort(&values, k),
                "trial {trial} n={n} k={k}"
            );
        }
    }

    #[test]
    fn matches_sort_reference_with_many_ties() {
        // Quantized values force heavy magnitude ties, stressing the
        // threshold tie-fill path.
        let mut rng = StdRng::seed_from_u64(13);
        for trial in 0..50 {
            let n = rng.gen_range(1..200);
            let values: Vec<f32> = (0..n).map(|_| (rng.gen_range(-3i32..4)) as f32).collect();
            let k = rng.gen_range(0..=n);
            assert_eq!(
                top_k_abs(&values, k),
                top_k_by_sort(&values, k),
                "trial {trial} n={n} k={k}"
            );
        }
    }

    #[test]
    fn scratch_reuse_is_consistent() {
        let mut scratch = TopKScratch::with_capacity(64);
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..20 {
            let n = rng.gen_range(1..64);
            let values: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let k = rng.gen_range(0..=n);
            let got = top_k_abs_masked_into(&values, k, TopKScope::All, &mut scratch).to_vec();
            assert_eq!(got, top_k_by_sort(&values, k));
        }
    }

    #[test]
    fn k_zero_is_empty() {
        assert!(top_k_abs(&[1.0, 2.0], 0).is_empty());
    }

    #[test]
    fn k_ge_len_returns_all() {
        assert_eq!(top_k_abs(&[1.0, 2.0], 5), vec![0, 1]);
    }

    #[test]
    fn empty_input() {
        assert!(top_k_abs(&[], 3).is_empty());
    }

    #[test]
    fn ties_break_toward_smaller_index() {
        let v = [2.0f32, -2.0, 2.0, 2.0];
        assert_eq!(top_k_abs(&v, 2), vec![0, 1]);
    }

    #[test]
    fn nan_is_selected_last() {
        let v = [f32::NAN, 1.0, 0.5];
        assert_eq!(top_k_abs(&v, 2), vec![1, 2]);
        assert_eq!(top_k_abs(&v, 3), vec![0, 1, 2]);
    }

    #[test]
    fn all_nan_input_selects_by_index() {
        let v = [f32::NAN, f32::NAN, f32::NAN];
        assert_eq!(top_k_abs(&v, 2), vec![0, 1]);
    }

    #[test]
    fn inside_scope_restricts_candidates() {
        let v = [10.0f32, 9.0, 8.0, 7.0];
        let m = BitMask::from_indices(4, [2usize, 3]);
        assert_eq!(top_k_abs_masked(&v, 1, TopKScope::Inside(&m)), vec![2]);
    }

    #[test]
    fn outside_scope_excludes_mask() {
        let v = [10.0f32, 9.0, 8.0, 7.0];
        let m = BitMask::from_indices(4, [0usize]);
        assert_eq!(top_k_abs_masked(&v, 2, TopKScope::Outside(&m)), vec![1, 2]);
    }

    #[test]
    fn scoped_selection_matches_filtered_reference() {
        let mut rng = StdRng::seed_from_u64(23);
        for trial in 0..40 {
            let n = rng.gen_range(1..300);
            let values: Vec<f32> = (0..n).map(|_| rng.gen_range(-5.0..5.0)).collect();
            let density = rng.gen_range(0.0..1.0);
            let mask = BitMask::from_indices(n, (0..n).filter(|_| rng.gen::<f64>() < density));
            let k = rng.gen_range(0..=n);

            // Reference: rank only the scope's candidates via full sort.
            let reference = |keep: &dyn Fn(usize) -> bool| -> Vec<usize> {
                let cands: Vec<usize> = (0..n).filter(|&i| keep(i)).collect();
                let mut idx = cands.clone();
                idx.sort_by(|&a, &b| {
                    let ma = if values[a].abs().is_nan() {
                        -1.0
                    } else {
                        values[a].abs()
                    };
                    let mb = if values[b].abs().is_nan() {
                        -1.0
                    } else {
                        values[b].abs()
                    };
                    mb.partial_cmp(&ma).unwrap().then(a.cmp(&b))
                });
                idx.truncate(k.min(cands.len()));
                idx.sort_unstable();
                idx
            };

            assert_eq!(
                top_k_abs_masked(&values, k, TopKScope::Inside(&mask)),
                reference(&|i| mask.get(i)),
                "trial {trial} inside n={n} k={k}"
            );
            assert_eq!(
                top_k_abs_masked(&values, k, TopKScope::Outside(&mask)),
                reference(&|i| !mask.get(i)),
                "trial {trial} outside n={n} k={k}"
            );
        }
    }

    #[test]
    fn scope_with_fewer_candidates_than_k() {
        let v = [1.0f32, 2.0, 3.0];
        let m = BitMask::from_indices(3, [1usize]);
        assert_eq!(top_k_abs_masked(&v, 5, TopKScope::Inside(&m)), vec![1]);
    }

    #[test]
    fn negative_values_use_magnitude() {
        let v = [-10.0f32, 1.0, 2.0];
        assert_eq!(top_k_abs(&v, 1), vec![0]);
    }

    #[test]
    #[should_panic(expected = "scope mask length mismatch")]
    fn scope_length_mismatch_panics() {
        let m = BitMask::zeros(2);
        let _ = top_k_abs_masked(&[1.0, 2.0, 3.0], 1, TopKScope::Inside(&m));
    }
}
