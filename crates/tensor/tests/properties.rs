//! Property-based tests for the tensor crate's core invariants.

use gluefl_tensor::{top_k_abs, top_k_abs_masked, BitMask, SparseUpdate, TopKScope, WireCost};
use proptest::prelude::*;

fn small_vec() -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-100.0f32..100.0, 0..200)
}

proptest! {
    /// top_k result always has exactly min(k, n) indices, sorted & unique.
    #[test]
    fn topk_cardinality_and_order(v in small_vec(), k in 0usize..250) {
        let idx = top_k_abs(&v, k);
        prop_assert_eq!(idx.len(), k.min(v.len()));
        prop_assert!(idx.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(idx.iter().all(|&i| i < v.len()));
    }

    /// Every selected magnitude dominates every non-selected magnitude.
    #[test]
    fn topk_dominance(v in small_vec(), k in 1usize..50) {
        let idx = top_k_abs(&v, k);
        if idx.len() < v.len() {
            let selected: std::collections::HashSet<usize> = idx.iter().copied().collect();
            let min_sel = idx.iter().map(|&i| v[i].abs()).fold(f32::INFINITY, f32::min);
            for (i, value) in v.iter().enumerate() {
                if !selected.contains(&i) {
                    prop_assert!(value.abs() <= min_sel,
                        "unselected {} has |{}| > min selected {}", i, value, min_sel);
                }
            }
        }
    }

    /// Inside-scope ∪ outside-scope selections partition an all-scope
    /// selection when k covers everything.
    #[test]
    fn topk_scopes_partition(v in small_vec(), ones in proptest::collection::vec(any::<bool>(), 0..200)) {
        let n = v.len().min(ones.len());
        let v = &v[..n];
        let mask = BitMask::from_indices(n, (0..n).filter(|&i| ones[i]));
        let inside = top_k_abs_masked(v, n, TopKScope::Inside(&mask));
        let outside = top_k_abs_masked(v, n, TopKScope::Outside(&mask));
        prop_assert_eq!(inside.len() + outside.len(), n);
        let mut all: Vec<usize> = inside.into_iter().chain(outside).collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
    }

    /// Mask algebra: De Morgan and cardinality identities.
    #[test]
    fn mask_de_morgan(ones_a in proptest::collection::vec(any::<bool>(), 1..300),
                      ones_b in proptest::collection::vec(any::<bool>(), 1..300)) {
        let n = ones_a.len().min(ones_b.len());
        let a = BitMask::from_indices(n, (0..n).filter(|&i| ones_a[i]));
        let b = BitMask::from_indices(n, (0..n).filter(|&i| ones_b[i]));
        // ¬(A ∪ B) == ¬A ∩ ¬B
        prop_assert_eq!(a.or(&b).not(), a.not().and(&b.not()));
        // |A| + |B| == |A ∪ B| + |A ∩ B|
        prop_assert_eq!(
            a.count_ones() + b.count_ones(),
            a.or(&b).count_ones() + a.and(&b).count_ones()
        );
        // A \ B == A ∩ ¬B
        prop_assert_eq!(a.and_not(&b), a.and(&b.not()));
        // overlap == |A ∩ B|
        prop_assert_eq!(a.overlap(&b), a.and(&b).count_ones());
    }

    /// iter_ones is the inverse of from_indices.
    #[test]
    fn mask_iteration_roundtrip(idx in proptest::collection::btree_set(0usize..500, 0..100)) {
        let m = BitMask::from_indices(500, idx.iter().copied());
        let back: Vec<usize> = m.iter_ones().collect();
        prop_assert_eq!(back, idx.into_iter().collect::<Vec<_>>());
    }

    /// Sparse extract + densify == mask ⊙ dense.
    #[test]
    fn sparse_masked_extraction(v in small_vec(), ones in proptest::collection::vec(any::<bool>(), 0..200)) {
        let n = v.len().min(ones.len());
        let v = &v[..n];
        let mask = BitMask::from_indices(n, (0..n).filter(|&i| ones[i]));
        let sparse = SparseUpdate::from_dense_masked(v, &mask);
        let mut masked = v.to_vec();
        mask.apply_to(&mut masked);
        prop_assert_eq!(sparse.to_dense(), masked);
        prop_assert_eq!(sparse.nnz(), mask.count_ones());
    }

    /// apply-then-gather is the identity on the support set.
    #[test]
    fn sparse_apply_gather_roundtrip(pairs in proptest::collection::btree_map(0u32..100, -10.0f32..10.0, 0..40)) {
        let u = SparseUpdate::from_pairs(100, pairs.clone().into_iter().collect());
        let mut w = vec![0.0f32; 100];
        u.apply(&mut w);
        let idx: Vec<usize> = pairs.keys().map(|&i| i as usize).collect();
        let g = SparseUpdate::gather(&w, &idx);
        prop_assert_eq!(g, u);
    }

    /// Wire cost never exceeds the dense cost by more than the position
    /// encoding minimum, and value bytes are exact.
    #[test]
    fn wire_cost_bounds(dim in 1usize..10_000, frac in 0.0f64..1.0) {
        let nnz = ((dim as f64) * frac) as usize;
        let c = WireCost::sparse(dim, nnz);
        prop_assert_eq!(c.value_bytes, nnz as u64 * 4);
        // position bytes = min(bitmap, index list)
        let bitmap = (dim as u64).div_ceil(8);
        let index = nnz as u64 * 4;
        prop_assert_eq!(c.position_bytes, bitmap.min(index));
    }
}
