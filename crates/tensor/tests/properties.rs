//! Property-based tests for the tensor crate's core invariants.

use gluefl_tensor::{top_k_abs, top_k_abs_masked, BitMask, SparseUpdate, TopKScope, WireCost};
use proptest::prelude::*;

fn small_vec() -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-100.0f32..100.0, 0..200)
}

proptest! {
    /// top_k result always has exactly min(k, n) indices, sorted & unique.
    #[test]
    fn topk_cardinality_and_order(v in small_vec(), k in 0usize..250) {
        let idx = top_k_abs(&v, k);
        prop_assert_eq!(idx.len(), k.min(v.len()));
        prop_assert!(idx.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(idx.iter().all(|&i| i < v.len()));
    }

    /// Every selected magnitude dominates every non-selected magnitude.
    #[test]
    fn topk_dominance(v in small_vec(), k in 1usize..50) {
        let idx = top_k_abs(&v, k);
        if idx.len() < v.len() {
            let selected: std::collections::HashSet<usize> = idx.iter().copied().collect();
            let min_sel = idx.iter().map(|&i| v[i].abs()).fold(f32::INFINITY, f32::min);
            for (i, value) in v.iter().enumerate() {
                if !selected.contains(&i) {
                    prop_assert!(value.abs() <= min_sel,
                        "unselected {} has |{}| > min selected {}", i, value, min_sel);
                }
            }
        }
    }

    /// Inside-scope ∪ outside-scope selections partition an all-scope
    /// selection when k covers everything.
    #[test]
    fn topk_scopes_partition(v in small_vec(), ones in proptest::collection::vec(any::<bool>(), 0..200)) {
        let n = v.len().min(ones.len());
        let v = &v[..n];
        let mask = BitMask::from_indices(n, (0..n).filter(|&i| ones[i]));
        let inside = top_k_abs_masked(v, n, TopKScope::Inside(&mask));
        let outside = top_k_abs_masked(v, n, TopKScope::Outside(&mask));
        prop_assert_eq!(inside.len() + outside.len(), n);
        let mut all: Vec<usize> = inside.into_iter().chain(outside).collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
    }

    /// Mask algebra: De Morgan and cardinality identities.
    #[test]
    fn mask_de_morgan(ones_a in proptest::collection::vec(any::<bool>(), 1..300),
                      ones_b in proptest::collection::vec(any::<bool>(), 1..300)) {
        let n = ones_a.len().min(ones_b.len());
        let a = BitMask::from_indices(n, (0..n).filter(|&i| ones_a[i]));
        let b = BitMask::from_indices(n, (0..n).filter(|&i| ones_b[i]));
        // ¬(A ∪ B) == ¬A ∩ ¬B
        prop_assert_eq!(a.or(&b).not(), a.not().and(&b.not()));
        // |A| + |B| == |A ∪ B| + |A ∩ B|
        prop_assert_eq!(
            a.count_ones() + b.count_ones(),
            a.or(&b).count_ones() + a.and(&b).count_ones()
        );
        // A \ B == A ∩ ¬B
        prop_assert_eq!(a.and_not(&b), a.and(&b.not()));
        // overlap == |A ∩ B|
        prop_assert_eq!(a.overlap(&b), a.and(&b).count_ones());
    }

    /// iter_ones is the inverse of from_indices.
    #[test]
    fn mask_iteration_roundtrip(idx in proptest::collection::btree_set(0usize..500, 0..100)) {
        let m = BitMask::from_indices(500, idx.iter().copied());
        let back: Vec<usize> = m.iter_ones().collect();
        prop_assert_eq!(back, idx.into_iter().collect::<Vec<_>>());
    }

    /// Sparse extract + densify == mask ⊙ dense.
    #[test]
    fn sparse_masked_extraction(v in small_vec(), ones in proptest::collection::vec(any::<bool>(), 0..200)) {
        let n = v.len().min(ones.len());
        let v = &v[..n];
        let mask = BitMask::from_indices(n, (0..n).filter(|&i| ones[i]));
        let sparse = SparseUpdate::from_dense_masked(v, &mask);
        let mut masked = v.to_vec();
        mask.apply_to(&mut masked);
        prop_assert_eq!(sparse.to_dense(), masked);
        prop_assert_eq!(sparse.nnz(), mask.count_ones());
    }

    /// apply-then-gather is the identity on the support set.
    #[test]
    fn sparse_apply_gather_roundtrip(pairs in proptest::collection::btree_map(0u32..100, -10.0f32..10.0, 0..40)) {
        let u = SparseUpdate::from_pairs(100, pairs.clone().into_iter().collect());
        let mut w = vec![0.0f32; 100];
        u.apply(&mut w);
        let idx: Vec<usize> = pairs.keys().map(|&i| i as usize).collect();
        let g = SparseUpdate::gather(&w, &idx);
        prop_assert_eq!(g, u);
    }

    /// Wire cost never exceeds the dense cost by more than the position
    /// encoding minimum, and value bytes are exact.
    #[test]
    fn wire_cost_bounds(dim in 1usize..10_000, frac in 0.0f64..1.0) {
        let nnz = ((dim as f64) * frac) as usize;
        let c = WireCost::sparse(dim, nnz);
        prop_assert_eq!(c.value_bytes, nnz as u64 * 4);
        // position bytes = min(bitmap, index list)
        let bitmap = (dim as u64).div_ceil(8);
        let index = nnz as u64 * 4;
        prop_assert_eq!(c.position_bytes, bitmap.min(index));
    }
}

/// Full-sort reference for scoped top-k with the documented tie-break
/// (magnitude descending, then index ascending; NaN below everything).
fn scoped_topk_reference(values: &[f32], k: usize, keep: impl Fn(usize) -> bool) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..values.len()).filter(|&i| keep(i)).collect();
    idx.sort_by(|&a, &b| {
        let ma = if values[a].abs().is_nan() {
            -1.0
        } else {
            values[a].abs()
        };
        let mb = if values[b].abs().is_nan() {
            -1.0
        } else {
            values[b].abs()
        };
        mb.partial_cmp(&ma).unwrap().then(a.cmp(&b))
    });
    idx.truncate(k.min(idx.len()));
    idx.sort_unstable();
    idx
}

proptest! {
    /// The word-level two-pass kernel is exactly the full-sort reference,
    /// for every scope, across dimensions, k, and mask densities.
    #[test]
    fn topk_kernel_matches_reference_across_scopes(
        v in proptest::collection::vec(-100.0f32..100.0, 0..400),
        ones in proptest::collection::vec(any::<bool>(), 0..400),
        k in 0usize..450,
    ) {
        let n = v.len().min(ones.len());
        let v = &v[..n];
        let mask = BitMask::from_indices(n, (0..n).filter(|&i| ones[i]));
        prop_assert_eq!(
            top_k_abs_masked(v, k, TopKScope::All),
            scoped_topk_reference(v, k, |_| true)
        );
        prop_assert_eq!(
            top_k_abs_masked(v, k, TopKScope::Inside(&mask)),
            scoped_topk_reference(v, k, |i| mask.get(i))
        );
        prop_assert_eq!(
            top_k_abs_masked(v, k, TopKScope::Outside(&mask)),
            scoped_topk_reference(v, k, |i| !mask.get(i))
        );
    }

    /// Heavy magnitude ties (quantized values) still match the reference
    /// tie-break exactly.
    #[test]
    fn topk_kernel_matches_reference_with_ties(
        v in proptest::collection::vec(-3i32..4, 1..300),
        ones in proptest::collection::vec(any::<bool>(), 1..300),
        k in 0usize..300,
    ) {
        let n = v.len().min(ones.len());
        let v: Vec<f32> = v[..n].iter().map(|&x| x as f32).collect();
        let mask = BitMask::from_indices(n, (0..n).filter(|&i| ones[i]));
        prop_assert_eq!(
            top_k_abs_masked(&v, k, TopKScope::Outside(&mask)),
            scoped_topk_reference(&v, k, |i| !mask.get(i))
        );
    }

    /// A reused scratch arena never changes results.
    #[test]
    fn topk_scratch_reuse_is_pure(
        a in proptest::collection::vec(-10.0f32..10.0, 1..200),
        b in proptest::collection::vec(-10.0f32..10.0, 1..200),
        k in 0usize..200,
    ) {
        use gluefl_tensor::{top_k_abs_masked_into, TopKScratch};
        let mut scratch = TopKScratch::new();
        let first = top_k_abs_masked_into(&a, k, TopKScope::All, &mut scratch).to_vec();
        let _ = top_k_abs_masked_into(&b, k, TopKScope::All, &mut scratch).to_vec();
        let again = top_k_abs_masked_into(&a, k, TopKScope::All, &mut scratch).to_vec();
        prop_assert_eq!(&first, &again);
        prop_assert_eq!(first, top_k_abs(&a, k.min(a.len())).into_iter().take(k).collect::<Vec<_>>());
    }

    /// iter_zeros is the exact complement of iter_ones.
    #[test]
    fn mask_iter_zeros_complements_ones(ones in proptest::collection::vec(any::<bool>(), 0..400)) {
        let n = ones.len();
        let m = BitMask::from_indices(n, (0..n).filter(|&i| ones[i]));
        let zeros: Vec<usize> = m.iter_zeros().collect();
        let expected: Vec<usize> = (0..n).filter(|&i| !ones[i]).collect();
        prop_assert_eq!(zeros, expected);
        let mut via_callback = Vec::new();
        m.for_each_one(|i| via_callback.push(i));
        prop_assert_eq!(via_callback, m.iter_ones().collect::<Vec<_>>());
    }

    /// scatter_add through a mask equals a per-position reference.
    #[test]
    fn mask_scatter_add_matches_reference(
        ones in proptest::collection::vec(any::<bool>(), 1..300),
        scale in -2.0f32..2.0,
    ) {
        let n = ones.len();
        let m = BitMask::from_indices(n, (0..n).filter(|&i| ones[i]));
        let vals: Vec<f32> = (0..m.count_ones()).map(|j| j as f32 - 3.0).collect();
        let mut fast = vec![1.0f32; n];
        m.scatter_add(&mut fast, &vals, scale);
        let mut slow = vec![1.0f32; n];
        for (j, i) in m.iter_ones().enumerate() {
            slow[i] += scale * vals[j];
        }
        prop_assert_eq!(fast, slow);
    }

    /// Fused masked vecops equal their compose-then-mask references.
    #[test]
    fn masked_vecops_match_reference(
        a in proptest::collection::vec(-10.0f32..10.0, 1..300),
        ones in proptest::collection::vec(any::<bool>(), 1..300),
        s in -2.0f32..2.0,
    ) {
        use gluefl_tensor::vecops;
        let n = a.len().min(ones.len());
        let a = &a[..n];
        let b: Vec<f32> = a.iter().map(|x| x * 0.5 + 1.0).collect();
        let m = BitMask::from_indices(n, (0..n).filter(|&i| ones[i]));

        let mut fused = b.clone();
        vecops::masked_axpy(&mut fused, s, a, &m);
        let mut reference = b.clone();
        for i in m.iter_ones() {
            reference[i] += s * a[i];
        }
        prop_assert_eq!(&fused, &reference);

        let mut fused_sub = vec![f32::NAN; n];
        vecops::masked_sub_into(&mut fused_sub, a, &b, &m);
        let mut ref_sub = vecops::sub(a, &b);
        m.apply_to(&mut ref_sub);
        prop_assert_eq!(fused_sub, ref_sub);
    }

    /// Range-sharded sparse accumulation partitions the full scatter for
    /// any shard size.
    #[test]
    fn sparse_range_add_partitions(
        pairs in proptest::collection::btree_map(0u32..300, -5.0f32..5.0, 0..80),
        shard in 1usize..310,
    ) {
        let dim = 300;
        let u = SparseUpdate::from_pairs(dim, pairs.into_iter().collect());
        let mut full = vec![0.0f32; dim];
        u.add_scaled_into(&mut full, 1.5);
        let mut sharded = vec![0.0f32; dim];
        for (t, chunk) in sharded.chunks_mut(shard).enumerate() {
            u.add_scaled_range_into(chunk, 1.5, t * shard);
        }
        prop_assert_eq!(full, sharded);
    }
}

// ---------------------------------------------------------------------------
// Packed top-k: selecting over `(support, packed values)` pairs must be
// indistinguishable from densifying first — packed values at the set
// positions, exact `0.0` elsewhere — for every scope.
// ---------------------------------------------------------------------------

proptest! {
    /// [`top_k_abs_packed_into`] equals [`top_k_abs_masked_into`] on the
    /// virtual dense vector, including the zero fill-up selections that
    /// land outside the support.
    #[test]
    fn packed_top_k_matches_dense_twin(
        dim in 1usize..400,
        pairs in proptest::collection::btree_map(0u32..400, -4.0f32..4.0, 0..120),
        k in 0usize..150,
        scope_sel in 0u8..3,
        seed in any::<u64>(),
    ) {
        use gluefl_tensor::{top_k_abs_masked_into, top_k_abs_packed_into, TopKScratch};
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut support = BitMask::zeros(dim);
        let mut packed = Vec::new();
        for (&i, &v) in &pairs {
            if (i as usize) < dim {
                support.set(i as usize, true);
                packed.push(v);
            }
        }
        let mut dense = vec![0.0f32; dim];
        {
            let mut r = 0;
            support.for_each_one(|i| {
                dense[i] = packed[r];
                r += 1;
            });
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let scope_mask =
            BitMask::from_indices(dim, (0..dim).filter(|_| rng.gen_bool(0.5)));
        let scope = match scope_sel {
            0 => TopKScope::All,
            1 => TopKScope::Inside(&scope_mask),
            _ => TopKScope::Outside(&scope_mask),
        };
        let mut s1 = TopKScratch::new();
        let mut s2 = TopKScratch::new();
        let got = top_k_abs_packed_into(&support, &packed, k, scope, &mut s1).to_vec();
        let scope = match scope_sel {
            0 => TopKScope::All,
            1 => TopKScope::Inside(&scope_mask),
            _ => TopKScope::Outside(&scope_mask),
        };
        let want = top_k_abs_masked_into(&dense, k, scope, &mut s2).to_vec();
        prop_assert_eq!(got, want, "dim={} k={} scope={}", dim, k, scope_sel);
    }
}
