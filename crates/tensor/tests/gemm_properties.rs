//! Property tests pinning every blocked GEMM layout **bit-exact** against
//! its plain-loop reference twin.
//!
//! The blocked kernels promise more than closeness: blocking must never
//! reassociate an output element's reduction, so the bits must match the
//! naive triple loop exactly — across adversarial shapes (batch 1, unit
//! input/output dimensions, and dimensions straddling the register/cache
//! block sizes), arbitrary data, and accumulation on top of arbitrary
//! pre-existing gradients.

use gluefl_tensor::gemm::{gemm_nn, gemm_nn_ref, gemm_nt, gemm_nt_ref, gemm_tn, gemm_tn_ref};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn fill(rng: &mut StdRng, len: usize) -> Vec<f32> {
    (0..len).map(|_| rng.gen_range(-3.0f32..3.0)).collect()
}

fn bits_eq(got: &[f32], want: &[f32]) -> bool {
    got.len() == want.len()
        && got
            .iter()
            .zip(want)
            .all(|(g, w)| g.to_bits() == w.to_bits())
}

/// Dimension strategy: small enough to hit batch 1 / unit dims often,
/// wide enough to straddle the 2/4/8-wide register tiles (the cache-tile
/// edge `NN_KC + 3` is pinned by an in-module unit test).
fn dim() -> impl Strategy<Value = usize> {
    1usize..70
}

proptest! {
    /// Forward layout: `out = a·bᵀ + bias` is bit-exact vs the twin.
    #[test]
    fn nn_blocked_is_bit_exact(m in dim(), n in dim(), k in dim(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = fill(&mut rng, m * k);
        let b = fill(&mut rng, n * k);
        let bias = fill(&mut rng, n);
        let mut got = vec![0.0f32; m * n];
        let mut want = vec![0.0f32; m * n];
        gemm_nn(&a, &b, &bias, m, n, k, &mut got);
        gemm_nn_ref(&a, &b, &bias, m, n, k, &mut want);
        prop_assert!(bits_eq(&got, &want), "nn diverged at m={} n={} k={}", m, n, k);
    }

    /// Backward-data layout: `out = a·b` is bit-exact vs the twin.
    #[test]
    fn tn_blocked_is_bit_exact(m in dim(), p in dim(), n in dim(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = fill(&mut rng, m * p);
        let b = fill(&mut rng, p * n);
        // Garbage in `out` must not leak through: gemm_tn overwrites.
        let mut got = fill(&mut rng, m * n);
        let mut want = vec![0.0f32; m * n];
        gemm_tn(&a, &b, m, p, n, &mut got);
        gemm_tn_ref(&a, &b, m, p, n, &mut want);
        prop_assert!(bits_eq(&got, &want), "tn diverged at m={} p={} n={}", m, p, n);
    }

    /// Backward-weights layout: `out += aᵀ·b` accumulates bit-exactly on
    /// top of an arbitrary pre-existing gradient.
    #[test]
    fn nt_blocked_is_bit_exact(m in dim(), p in dim(), n in dim(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = fill(&mut rng, m * p);
        let b = fill(&mut rng, m * n);
        let grad = fill(&mut rng, p * n);
        let mut got = grad.clone();
        let mut want = grad;
        gemm_nt(&a, &b, m, p, n, &mut got);
        gemm_nt_ref(&a, &b, m, p, n, &mut want);
        prop_assert!(bits_eq(&got, &want), "nt diverged at m={} p={} n={}", m, p, n);
    }

    /// Signed zeros survive blocking: ReLU'd activations produce exact
    /// `±0.0` terms, and the chains must round them identically.
    #[test]
    fn nn_preserves_signed_zero_terms(m in 1usize..6, n in 1usize..10, k in 1usize..12, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a: Vec<f32> = (0..m * k)
            .map(|_| match rng.gen_range(0u8..4) {
                0 => 0.0,
                1 => -0.0,
                _ => rng.gen_range(-1.0f32..1.0),
            })
            .collect();
        let b = fill(&mut rng, n * k);
        let bias = vec![0.0f32; n];
        let mut got = vec![0.0f32; m * n];
        let mut want = vec![0.0f32; m * n];
        gemm_nn(&a, &b, &bias, m, n, k, &mut got);
        gemm_nn_ref(&a, &b, &bias, m, n, k, &mut want);
        prop_assert!(bits_eq(&got, &want), "zero handling diverged");
    }
}

/// The paper's training and eval shapes, pinned explicitly (the [192, 96]
/// MLP over 64 features / 62 classes at batch 16, plus an eval batch).
#[test]
fn paper_shapes_are_bit_exact() {
    for (i, &(m, n, k)) in [
        (16, 192, 64),
        (16, 96, 192),
        (16, 62, 96),
        (512, 192, 64),
        (512, 62, 96),
    ]
    .iter()
    .enumerate()
    {
        let mut rng = StdRng::seed_from_u64(0xFE ^ i as u64);
        let a = fill(&mut rng, m * k);
        let b = fill(&mut rng, n * k);
        let bias = fill(&mut rng, n);
        let mut got = vec![0.0f32; m * n];
        let mut want = vec![0.0f32; m * n];
        gemm_nn(&a, &b, &bias, m, n, k, &mut got);
        gemm_nn_ref(&a, &b, &bias, m, n, k, &mut want);
        assert!(bits_eq(&got, &want), "nn diverged at {m}x{n}x{k}");
    }
}

/// Under the `parallel` feature, an eval-sized batch routes through the
/// row-sharded path and must still match the serial reference bitwise.
#[cfg(feature = "parallel")]
#[test]
fn parallel_forward_matches_reference_bitwise() {
    let (m, n, k) = (1024, 192, 64);
    let mut rng = StdRng::seed_from_u64(99);
    let a = fill(&mut rng, m * k);
    let b = fill(&mut rng, n * k);
    let bias = fill(&mut rng, n);
    let mut got = vec![0.0f32; m * n];
    let mut want = vec![0.0f32; m * n];
    gemm_nn(&a, &b, &bias, m, n, k, &mut got);
    gemm_nn_ref(&a, &b, &bias, m, n, k, &mut want);
    assert!(bits_eq(&got, &want), "sharded forward diverged");
}

// ---------------------------------------------------------------------------
// Batched-client kernels: stacking K clients into one call must be
// bit-exact against K per-client calls on the same rows — whether the
// operand is shared (step 0: identical weights) or per-client packed
// tiles (later steps: diverged weights), and for any K including 1 and
// counts that don't divide the worker count.
// ---------------------------------------------------------------------------

use gluefl_tensor::gemm::{gemm_nn_batch, gemm_tn_batch, BatchOperand};

proptest! {
    /// Forward batched layout vs per-client [`gemm_nn`] twin.
    #[test]
    fn nn_batch_is_bit_exact_vs_per_client(
        clients in 1usize..7,
        mb in 1usize..18,
        n in dim(),
        k in dim(),
        pad in 0usize..5,
        shared in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = fill(&mut rng, clients * mb * k);
        // Per-client tiles live in a padded stride to exercise the
        // PerClient offset arithmetic; shared uses one tile for all.
        let wstride = n * k + pad;
        let bstride = n + pad;
        let wbase = fill(&mut rng, clients * wstride + pad);
        let bbase = fill(&mut rng, clients * bstride + pad);
        let (w, bias) = if shared {
            (
                BatchOperand::Shared(&wbase[..n * k]),
                BatchOperand::Shared(&bbase[..n]),
            )
        } else {
            (
                BatchOperand::PerClient { base: &wbase, stride: wstride, off: pad },
                BatchOperand::PerClient { base: &bbase, stride: bstride, off: pad },
            )
        };
        let mut got = vec![0.0f32; clients * mb * n];
        gemm_nn_batch(&a, &w, &bias, clients, mb, n, k, &mut got);
        let mut want = vec![0.0f32; clients * mb * n];
        for c in 0..clients {
            let (wt, bt) = if shared {
                (&wbase[..n * k], &bbase[..n])
            } else {
                (
                    &wbase[c * wstride + pad..][..n * k],
                    &bbase[c * bstride + pad..][..n],
                )
            };
            gemm_nn(
                &a[c * mb * k..][..mb * k],
                wt,
                bt,
                mb,
                n,
                k,
                &mut want[c * mb * n..][..mb * n],
            );
        }
        prop_assert!(
            bits_eq(&got, &want),
            "nn batch diverged at clients={} mb={} n={} k={} shared={}",
            clients, mb, n, k, shared
        );
    }

    /// Backward-data batched layout vs per-client [`gemm_tn`] twin.
    #[test]
    fn tn_batch_is_bit_exact_vs_per_client(
        clients in 1usize..7,
        mb in 1usize..18,
        p in dim(),
        n in dim(),
        pad in 0usize..5,
        shared in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = fill(&mut rng, clients * mb * p);
        let stride = p * n + pad;
        let base = fill(&mut rng, clients * stride + pad);
        let b = if shared {
            BatchOperand::Shared(&base[..p * n])
        } else {
            BatchOperand::PerClient { base: &base, stride, off: pad }
        };
        let mut got = vec![0.0f32; clients * mb * n];
        gemm_tn_batch(&a, &b, clients, mb, p, n, &mut got);
        let mut want = vec![0.0f32; clients * mb * n];
        for c in 0..clients {
            let bt = if shared {
                &base[..p * n]
            } else {
                &base[c * stride + pad..][..p * n]
            };
            gemm_tn(
                &a[c * mb * p..][..mb * p],
                bt,
                mb,
                p,
                n,
                &mut want[c * mb * n..][..mb * n],
            );
        }
        prop_assert!(
            bits_eq(&got, &want),
            "tn batch diverged at clients={} mb={} p={} n={} shared={}",
            clients, mb, p, n, shared
        );
    }
}
