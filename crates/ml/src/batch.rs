//! Lockstep batched-client training: K clients, one stacked GEMM per
//! layer, bit-identical to K independent serial clients.
//!
//! A federated round trains many clients from the same `global`
//! parameters with the same step count. Per-client training wastes the
//! structure: at step 0 every client's weights are *identical*, so the K
//! layer GEMMs of shape `mb × in_dim` collapse into one
//! `(K·mb) × in_dim` GEMM against the shared weight matrix — and after
//! the clients' weights diverge (step 1 onwards), the batched kernels
//! keep the stacked activation layout and read each client's weight tile
//! in place from the stacked parameter block
//! ([`gluefl_tensor::gemm::BatchOperand::PerClient`]).
//!
//! Bit-exactness is structural, not numerical luck:
//!
//! * the batched GEMMs ([`gluefl_tensor::gemm::gemm_nn_batch`] /
//!   [`gluefl_tensor::gemm::gemm_tn_batch`]) are pinned bit-exact
//!   against the per-client serial kernels — no output element's
//!   reduction is reassociated by stacking;
//! * everything that is per-client math (BatchNorm statistics, loss,
//!   weight gradients, SGD, running-statistic updates) *calls the same
//!   helper kernels as the serial path* on each client's slice of the
//!   stacked buffers, in client order;
//! * elementwise stages (ReLU and its backward) run over the stacked
//!   buffer, which touches each element exactly once with the same
//!   expression — there is no reduction to reassociate.
//!
//! The equivalence is pinned by the tests here (batched step vs.
//! [`crate::MlpTopology::loss_and_grad_into`] + SGD per client, bitwise)
//! and end-to-end by `gluefl-core`'s batched-training parity suite.

use crate::mlp::{bn_backward_into, bn_forward_into, LinearSpec, MlpTopology, Mode};
use crate::optimizer::sgd_momentum_step;
use crate::scratch::{reserve_total, size_to};
use gluefl_tensor::gemm::{gemm_nn_batch, gemm_nt, gemm_tn_batch, BatchOperand};

/// Per-hidden-layer stacked caches (client-major: client `c`'s rows are
/// the contiguous block `c·mb .. (c+1)·mb`).
#[derive(Debug, Default, Clone)]
struct BatchLayer {
    /// Pre-BatchNorm linear output, `(K·mb) × h`.
    z: Vec<f32>,
    /// Post-(BN+)ReLU activations, `(K·mb) × h`.
    act: Vec<f32>,
    /// ReLU pass-through mask, `(K·mb) × h`.
    relu_mask: Vec<bool>,
    /// Per-client BN batch means, `K × h`.
    mu: Vec<f32>,
    /// Per-client BN batch variances, `K × h`.
    var: Vec<f32>,
    /// Per-client BN `1/√(var+ε)`, `K × h`.
    inv_std: Vec<f32>,
    /// BN normalised activations, `(K·mb) × h`.
    x_hat: Vec<f32>,
}

/// Reusable workspace for lockstep batched-client training.
///
/// Owns the stacked per-client parameter, velocity, and gradient blocks
/// (`K × d` each) plus stacked activations; after [`BatchTrainScratch::begin`]
/// has sized the buffers once, a steady-state [`BatchTrainScratch::step`]
/// performs no heap allocation. One scratch serves rounds of different
/// client counts and batch sizes (buffers only grow).
#[derive(Debug, Default, Clone)]
pub struct BatchTrainScratch {
    clients: usize,
    batch: usize,
    /// Stacked per-client parameters, `K × d`.
    params: Vec<f32>,
    /// Stacked per-client SGD velocity, `K × d`.
    velocity: Vec<f32>,
    /// Stacked per-client gradients, `K × d`.
    grads: Vec<f32>,
    layers: Vec<BatchLayer>,
    /// Raw logits → log-probabilities (in place), `(K·mb) × classes`.
    logits: Vec<f32>,
    /// Loss gradient w.r.t. the logits, `(K·mb) × classes`.
    d_logits: Vec<f32>,
    /// Rotating stacked activation-gradient buffers.
    d_bufs: [Vec<f32>; 3],
    /// BN backward per-feature reduction `Σ dy` (reused client by client).
    sum_dy: Vec<f32>,
    /// BN backward per-feature reduction `Σ dy·x̂`.
    sum_dy_xhat: Vec<f32>,
    /// Stacked minibatch features, `(K·mb) × input_dim`; client `c`'s
    /// minibatch occupies rows `c·mb .. (c+1)·mb`.
    pub batch_x: Vec<f32>,
    /// Stacked minibatch labels, `K·mb`.
    pub batch_y: Vec<usize>,
}

impl BatchTrainScratch {
    /// Creates an empty scratch; buffers are sized by
    /// [`BatchTrainScratch::begin`].
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of clients of the round in progress.
    #[must_use]
    pub fn clients(&self) -> usize {
        self.clients
    }

    /// Starts a round: sizes every buffer for `(topology, clients, batch)`,
    /// copies `global` into each client's parameter block, and zeroes the
    /// stacked velocity (each client starts the round like a fresh
    /// optimizer, exactly as the serial path's per-client
    /// `reset_velocity`).
    ///
    /// # Panics
    /// Panics if `global.len()` differs from the topology's parameter
    /// count, or if `clients` or `batch` is zero.
    pub fn begin(&mut self, topo: &MlpTopology, global: &[f32], clients: usize, batch: usize) {
        let p = topo.num_params();
        assert_eq!(global.len(), p, "parameter length mismatch");
        assert!(clients > 0, "need at least one client");
        assert!(batch > 0, "need a positive batch size");
        self.clients = clients;
        self.batch = batch;
        let cfg = topo.config();
        let rows = clients * batch;
        size_to(&mut self.params, clients * p);
        size_to(&mut self.velocity, clients * p);
        size_to(&mut self.grads, clients * p);
        if self.layers.len() != cfg.hidden.len() {
            self.layers.clear();
            self.layers.resize(cfg.hidden.len(), BatchLayer::default());
        }
        let mut max_width = cfg.input_dim;
        for (ls, &h) in self.layers.iter_mut().zip(&cfg.hidden) {
            size_to(&mut ls.z, rows * h);
            size_to(&mut ls.act, rows * h);
            if ls.relu_mask.len() != rows * h {
                ls.relu_mask.clear();
                ls.relu_mask.resize(rows * h, false);
            }
            size_to(&mut ls.mu, clients * h);
            size_to(&mut ls.var, clients * h);
            size_to(&mut ls.inv_std, clients * h);
            size_to(&mut ls.x_hat, rows * h);
            max_width = max_width.max(h);
        }
        size_to(&mut self.logits, rows * cfg.classes);
        size_to(&mut self.d_logits, rows * cfg.classes);
        for d in &mut self.d_bufs {
            reserve_total(d, rows * max_width.max(cfg.classes));
        }
        let max_h = cfg.hidden.iter().copied().max().unwrap_or(0);
        reserve_total(&mut self.sum_dy, max_h);
        reserve_total(&mut self.sum_dy_xhat, max_h);
        size_to(&mut self.batch_x, rows * cfg.input_dim);
        if self.batch_y.len() != rows {
            self.batch_y.clear();
            self.batch_y.resize(rows, 0);
        }
        for block in self.params.chunks_mut(p) {
            block.copy_from_slice(global);
        }
        self.velocity.fill(0.0);
    }

    /// Client `c`'s current parameter block.
    ///
    /// # Panics
    /// Panics if `c` is out of range for the round begun last.
    #[must_use]
    pub fn client_params(&self, topo: &MlpTopology, c: usize) -> &[f32] {
        assert!(c < self.clients, "client index out of range");
        let p = topo.num_params();
        &self.params[c * p..(c + 1) * p]
    }

    /// One lockstep SGD-with-momentum step for every client from the
    /// staged minibatches in [`BatchTrainScratch::batch_x`] /
    /// [`BatchTrainScratch::batch_y`].
    ///
    /// `step_idx` selects the weight view: step 0 reads the shared
    /// (still-identical) parameters of client 0 for every GEMM; later
    /// steps read each client's own tile from the stacked block. Both are
    /// bit-identical to per-client serial training.
    ///
    /// Returns the mean training loss over every staged row (the
    /// per-client NLL means averaged across clients) — free to compute,
    /// since the loss kernel already produces it for the gradient, and
    /// what observability layers chart as "training loss this round".
    ///
    /// # Panics
    /// Panics if [`BatchTrainScratch::begin`] has not sized the scratch,
    /// or a staged label is out of range.
    pub fn step(&mut self, topo: &MlpTopology, step_idx: usize, lr: f32, momentum: f32) -> f64 {
        let clients = self.clients;
        let mb = self.batch;
        assert!(clients > 0 && mb > 0, "begin() must run before step()");
        let p = topo.num_params();
        let cfg = topo.config();
        let classes = cfg.classes;
        let n_hidden = cfg.hidden.len();
        let rows = clients * mb;
        assert_eq!(self.batch_x.len(), rows * cfg.input_dim, "batch_x shape");
        assert_eq!(self.batch_y.len(), rows, "batch_y shape");

        // ---- Forward ----
        for i in 0..n_hidden {
            let lin = topo.linears[i];
            let h = lin.out_dim;
            let (done, rest) = self.layers.split_at_mut(i);
            let ls = &mut rest[0];
            let input: &[f32] = if i == 0 {
                &self.batch_x
            } else {
                &done[i - 1].act
            };
            let (w_op, b_op) = weight_operands(&self.params, p, lin, step_idx);
            gemm_nn_batch(input, &w_op, &b_op, clients, mb, h, lin.in_dim, &mut ls.z);
            match topo.bns[i] {
                Some(bn) => {
                    for c in 0..clients {
                        bn_forward_into(
                            &self.params[c * p..(c + 1) * p],
                            bn,
                            &ls.z[c * mb * h..(c + 1) * mb * h],
                            mb,
                            Mode::Train { update_stats: true },
                            &mut ls.mu[c * h..(c + 1) * h],
                            &mut ls.var[c * h..(c + 1) * h],
                            &mut ls.inv_std[c * h..(c + 1) * h],
                            &mut ls.x_hat[c * mb * h..(c + 1) * mb * h],
                            &mut ls.act[c * mb * h..(c + 1) * mb * h],
                        );
                    }
                }
                None => ls.act.copy_from_slice(&ls.z),
            }
            // ReLU over the stacked activations (elementwise — identical
            // to the per-client loop).
            for (v, m) in ls.act.iter_mut().zip(ls.relu_mask.iter_mut()) {
                *m = *v > 0.0;
                if !*m {
                    *v = 0.0;
                }
            }
        }
        let out_lin = *topo.linears.last().expect("output layer exists");
        {
            let input: &[f32] = if n_hidden == 0 {
                &self.batch_x
            } else {
                &self.layers[n_hidden - 1].act
            };
            let (w_op, b_op) = weight_operands(&self.params, p, out_lin, step_idx);
            gemm_nn_batch(
                input,
                &w_op,
                &b_op,
                clients,
                mb,
                classes,
                out_lin.in_dim,
                &mut self.logits,
            );
        }

        // ---- Loss ----
        // log-softmax is row-independent; the per-client nll keeps each
        // client's 1/mb mean-loss scaling of d_logits.
        crate::loss::log_softmax_rows(&mut self.logits, rows, classes);
        let mut loss_sum = 0.0f64;
        for c in 0..clients {
            let r = c * mb * classes..(c + 1) * mb * classes;
            loss_sum += crate::loss::nll_and_grad(
                &self.logits[r.clone()],
                &self.batch_y[c * mb..(c + 1) * mb],
                classes,
                &mut self.d_logits[r],
            );
        }

        // ---- Backward ----
        self.grads.fill(0.0);
        {
            let [buf_a, buf_b, buf_c] = &mut self.d_bufs;
            let input: &[f32] = if n_hidden == 0 {
                &self.batch_x
            } else {
                &self.layers[n_hidden - 1].act
            };
            linear_backward_batch(
                &self.params,
                p,
                out_lin,
                input,
                clients,
                mb,
                &self.d_logits,
                &mut self.grads,
                buf_a,
                step_idx,
            );
            let mut d_cur: &mut Vec<f32> = buf_a;
            let mut d_bn: &mut Vec<f32> = buf_b;
            let mut d_next: &mut Vec<f32> = buf_c;
            for i in (0..n_hidden).rev() {
                let ls = &self.layers[i];
                let h = topo.linears[i].out_dim;
                // ReLU backward (stacked, elementwise).
                for (d, &m) in d_cur.iter_mut().zip(&ls.relu_mask) {
                    if !m {
                        *d = 0.0;
                    }
                }
                // BatchNorm backward, client by client with the serial
                // kernel on each client's slices.
                let d_pre: &[f32] = match topo.bns[i] {
                    Some(bn) => {
                        d_bn.clear();
                        d_bn.resize(rows * h, 0.0);
                        for c in 0..clients {
                            bn_backward_into(
                                &self.params[c * p..(c + 1) * p],
                                bn,
                                &ls.x_hat[c * mb * h..(c + 1) * mb * h],
                                &ls.inv_std[c * h..(c + 1) * h],
                                mb,
                                &d_cur[c * mb * h..(c + 1) * mb * h],
                                &mut self.grads[c * p..(c + 1) * p],
                                &mut self.sum_dy,
                                &mut self.sum_dy_xhat,
                                &mut d_bn[c * mb * h..(c + 1) * mb * h],
                            );
                        }
                        d_bn
                    }
                    None => d_cur,
                };
                let input: &[f32] = if i == 0 {
                    &self.batch_x
                } else {
                    &self.layers[i - 1].act
                };
                linear_backward_batch(
                    &self.params,
                    p,
                    topo.linears[i],
                    input,
                    clients,
                    mb,
                    d_pre,
                    &mut self.grads,
                    d_next,
                    step_idx,
                );
                let freed = d_cur;
                d_cur = d_next;
                d_next = d_bn;
                d_bn = freed;
            }
        }

        // ---- Deferred BN running-statistics updates, client by client
        // (same arithmetic and order as the serial path's
        // `apply_bn_stat_updates`). ----
        let unbias = if mb > 1 {
            mb as f32 / (mb as f32 - 1.0)
        } else {
            1.0
        };
        for c in 0..clients {
            let cp = &mut self.params[c * p..(c + 1) * p];
            for (bn, ls) in topo.bns.iter().zip(&self.layers) {
                let Some(bn) = bn else { continue };
                let m = bn.momentum;
                let h = bn.dim;
                for o in 0..h {
                    let rm = &mut cp[bn.mean_off + o];
                    *rm = (1.0 - m) * *rm + m * ls.mu[c * h + o];
                    let rv = &mut cp[bn.var_off + o];
                    *rv = (1.0 - m) * *rv + m * ls.var[c * h + o] * unbias;
                }
                cp[bn.count_off] += 1.0;
            }
        }

        // ---- SGD, client by client on disjoint blocks. ----
        for ((cp, cg), cv) in self
            .params
            .chunks_mut(p)
            .zip(self.grads.chunks(p))
            .zip(self.velocity.chunks_mut(p))
        {
            sgd_momentum_step(cp, cg, cv, lr, momentum);
        }
        loss_sum / clients as f64
    }
}

/// Weight/bias views for one layer: shared (client 0's still-identical
/// block) at step 0, per-client tiles inside the stacked block afterwards.
fn weight_operands<'a>(
    params: &'a [f32],
    p: usize,
    lin: LinearSpec,
    step_idx: usize,
) -> (BatchOperand<'a>, BatchOperand<'a>) {
    let wl = lin.in_dim * lin.out_dim;
    if step_idx == 0 {
        (
            BatchOperand::Shared(&params[lin.w_off..lin.w_off + wl]),
            BatchOperand::Shared(&params[lin.b_off..lin.b_off + lin.out_dim]),
        )
    } else {
        (
            BatchOperand::PerClient {
                base: params,
                stride: p,
                off: lin.w_off,
            },
            BatchOperand::PerClient {
                base: params,
                stride: p,
                off: lin.b_off,
            },
        )
    }
}

/// Batched linear backward: per-client bias reduction and accumulating
/// weight-gradient GEMM (disjoint gradient blocks, serial-kernel calls in
/// client order), then one batched backward-data GEMM for the stacked
/// input gradient.
#[allow(clippy::too_many_arguments)]
fn linear_backward_batch(
    params: &[f32],
    p: usize,
    lin: LinearSpec,
    input: &[f32],
    clients: usize,
    mb: usize,
    d_out: &[f32],
    grads: &mut [f32],
    d_in: &mut Vec<f32>,
    step_idx: usize,
) {
    let h = lin.out_dim;
    let wl = lin.in_dim * h;
    for c in 0..clients {
        let grad = &mut grads[c * p..(c + 1) * p];
        let d_block = &d_out[c * mb * h..(c + 1) * mb * h];
        let in_block = &input[c * mb * lin.in_dim..(c + 1) * mb * lin.in_dim];
        let gb = &mut grad[lin.b_off..lin.b_off + h];
        for drow in d_block.chunks_exact(h) {
            for (g, &d) in gb.iter_mut().zip(drow) {
                *g += d;
            }
        }
        let gw = &mut grad[lin.w_off..lin.w_off + wl];
        gemm_nt(d_block, in_block, mb, h, lin.in_dim, gw);
    }
    d_in.clear();
    d_in.resize(clients * mb * lin.in_dim, 0.0);
    let (w_op, _) = weight_operands(params, p, lin, step_idx);
    gemm_tn_batch(d_out, &w_op, clients, mb, h, lin.in_dim, d_in);
}

/// Trains `clients` lockstep SGD rounds and pins every client's final
/// parameters bitwise against the serial per-client path — the in-crate
/// twin of gluefl-core's end-to-end parity suite.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::scratch::TrainScratch;
    use crate::{Mlp, MlpConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn toy(batch_norm: bool, hidden: Vec<usize>, seed: u64) -> Mlp {
        let mut rng = StdRng::seed_from_u64(seed);
        Mlp::new(
            MlpConfig {
                input_dim: 6,
                hidden,
                classes: 5,
                batch_norm,
            },
            &mut rng,
        )
    }

    /// Per-client serial reference: `loss_and_grad_into` + `sgd_step`,
    /// the exact path `local_train_into` uses.
    fn serial_train(
        model: &Mlp,
        client_batches: &[(Vec<f32>, Vec<usize>)],
        steps: usize,
        lr: f32,
        momentum: f32,
    ) -> Vec<Vec<f32>> {
        let topo = model.topology();
        let mut scratch = TrainScratch::new();
        client_batches
            .iter()
            .map(|(x, y)| {
                let mut params = model.params().to_vec();
                scratch.ensure(topo, y.len() / steps);
                scratch.reset_velocity();
                let mb = y.len() / steps;
                for s in 0..steps {
                    let xs = &x[s * mb * 6..(s + 1) * mb * 6];
                    let ys = &y[s * mb..(s + 1) * mb];
                    let _ = topo.loss_and_grad_into(&mut params, xs, ys, &mut scratch);
                    scratch.sgd_step(&mut params, lr, momentum);
                }
                params
            })
            .collect()
    }

    fn batched_train(
        model: &Mlp,
        client_batches: &[(Vec<f32>, Vec<usize>)],
        steps: usize,
        lr: f32,
        momentum: f32,
        scratch: &mut BatchTrainScratch,
    ) -> Vec<Vec<f32>> {
        let topo = model.topology();
        let clients = client_batches.len();
        let mb = client_batches[0].1.len() / steps;
        scratch.begin(topo, model.params(), clients, mb);
        for s in 0..steps {
            for (c, (x, y)) in client_batches.iter().enumerate() {
                scratch.batch_x[c * mb * 6..(c + 1) * mb * 6]
                    .copy_from_slice(&x[s * mb * 6..(s + 1) * mb * 6]);
                scratch.batch_y[c * mb..(c + 1) * mb].copy_from_slice(&y[s * mb..(s + 1) * mb]);
            }
            scratch.step(topo, s, lr, momentum);
        }
        (0..clients)
            .map(|c| scratch.client_params(topo, c).to_vec())
            .collect()
    }

    fn random_batches(
        clients: usize,
        steps: usize,
        mb: usize,
        seed: u64,
    ) -> Vec<(Vec<f32>, Vec<usize>)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..clients)
            .map(|_| {
                let x: Vec<f32> = (0..steps * mb * 6)
                    .map(|_| rng.gen_range(-1.0..1.0))
                    .collect();
                let y: Vec<usize> = (0..steps * mb).map(|_| rng.gen_range(0..5)).collect();
                (x, y)
            })
            .collect()
    }

    #[test]
    fn lockstep_matches_per_client_serial_bitwise() {
        let mut scratch = BatchTrainScratch::new();
        for batch_norm in [false, true] {
            // Client counts straddle tile boundaries (1, off-tile 3,
            // multi-tile 9) and shapes cover deep and shallow models.
            for (clients, hidden) in [(1usize, vec![8, 7]), (3, vec![8]), (9, vec![8, 7])] {
                let model = toy(batch_norm, hidden.clone(), 11 + clients as u64);
                let batches = random_batches(clients, 4, 5, 90 + clients as u64);
                let want = serial_train(&model, &batches, 4, 0.07, 0.9);
                let got = batched_train(&model, &batches, 4, 0.07, 0.9, &mut scratch);
                for (c, (a, b)) in want.iter().zip(&got).enumerate() {
                    assert!(
                        a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()),
                        "client {c} diverged (bn={batch_norm}, clients={clients}, hidden={hidden:?})"
                    );
                }
            }
        }
    }

    /// The mean loss `step` returns matches the serial loss kernel on
    /// the same rows and falls as training repeats one minibatch.
    #[test]
    fn step_returns_a_falling_mean_loss() {
        let mut scratch = BatchTrainScratch::new();
        let model = toy(false, vec![8], 31);
        let topo = model.topology();
        let batches = random_batches(3, 1, 6, 41);
        scratch.begin(topo, model.params(), 3, 6);
        let mut losses = Vec::new();
        // step_idx ≥ 1 reads each client's own tile, so repeating the
        // same staged minibatch must drive the reported loss down.
        for _ in 0..30 {
            for (c, (x, y)) in batches.iter().enumerate() {
                scratch.batch_x[c * 36..(c + 1) * 36].copy_from_slice(x);
                scratch.batch_y[c * 6..(c + 1) * 6].copy_from_slice(y);
            }
            losses.push(scratch.step(topo, 1, 0.1, 0.0));
        }
        assert!(losses.iter().all(|l| l.is_finite() && *l > 0.0));
        assert!(
            losses[losses.len() - 1] < losses[0] * 0.9,
            "loss did not fall: first {} last {}",
            losses[0],
            losses[losses.len() - 1]
        );
    }

    #[test]
    fn logistic_regression_no_hidden_layers() {
        let mut scratch = BatchTrainScratch::new();
        let model = toy(false, vec![], 5);
        let batches = random_batches(4, 3, 6, 55);
        let want = serial_train(&model, &batches, 3, 0.1, 0.0);
        let got = batched_train(&model, &batches, 3, 0.1, 0.0, &mut scratch);
        assert_eq!(want, got);
    }

    /// A reused scratch across rounds of different shapes must not leak
    /// state between rounds (velocity, params, activations).
    #[test]
    fn scratch_reuse_across_rounds_is_clean() {
        let mut scratch = BatchTrainScratch::new();
        let model = toy(true, vec![8], 21);
        let batches = random_batches(5, 2, 4, 77);
        let first = batched_train(&model, &batches, 2, 0.05, 0.9, &mut scratch);
        // Interleave a differently-shaped round, then repeat the first.
        let other = random_batches(2, 3, 7, 78);
        let _ = batched_train(&model, &other, 3, 0.02, 0.5, &mut scratch);
        let again = batched_train(&model, &batches, 2, 0.05, 0.9, &mut scratch);
        assert_eq!(first, again);
    }

    /// Steady-state lockstep steps must not reallocate stacked buffers.
    #[test]
    fn steps_are_allocation_free_in_steady_state() {
        let model = toy(true, vec![8, 7], 31);
        let topo = model.topology();
        let mut scratch = BatchTrainScratch::new();
        let batches = random_batches(6, 3, 4, 99);
        let _ = batched_train(&model, &batches, 3, 0.05, 0.9, &mut scratch);
        scratch.begin(topo, model.params(), 6, 4);
        let ptrs = (
            scratch.params.as_ptr(),
            scratch.grads.as_ptr(),
            scratch.velocity.as_ptr(),
            scratch.logits.as_ptr(),
            scratch.layers[0].z.as_ptr(),
            scratch.d_bufs[0].as_ptr(),
        );
        for s in 0..3 {
            for (c, (x, y)) in batches.iter().enumerate() {
                scratch.batch_x[c * 4 * 6..(c + 1) * 4 * 6]
                    .copy_from_slice(&x[s * 4 * 6..(s + 1) * 4 * 6]);
                scratch.batch_y[c * 4..(c + 1) * 4].copy_from_slice(&y[s * 4..(s + 1) * 4]);
            }
            scratch.step(topo, s, 0.05, 0.9);
        }
        assert_eq!(
            ptrs,
            (
                scratch.params.as_ptr(),
                scratch.grads.as_ptr(),
                scratch.velocity.as_ptr(),
                scratch.logits.as_ptr(),
                scratch.layers[0].z.as_ptr(),
                scratch.d_bufs[0].as_ptr(),
            )
        );
    }
}
