//! Pure-Rust neural-network substrate for the GlueFL reproduction.
//!
//! The paper trains ShuffleNet/MobileNet/ResNet-34 in PyTorch; this crate
//! provides the equivalent substrate in Rust, built around one design rule:
//! **a model is a flat `Vec<f32>` parameter vector** plus a [`ParamLayout`]
//! describing which positions are trainable weights and which are
//! BatchNorm running statistics. Everything the FL framework does —
//! masking, sparsification, sticky aggregation, staleness tracking — is
//! then model-agnostic, and the Appendix-D rule (aggregate BN statistics
//! with a plain `1/K` mean, no propensity re-weighting) can be applied by
//! position range.
//!
//! Contents:
//!
//! * [`Mlp`] — a multi-layer perceptron with optional [`BatchNorm`]
//!   (batch statistics in training mode, running statistics in eval mode),
//!   ReLU activations, softmax cross-entropy loss, and hand-derived
//!   backprop verified by finite-difference tests. Internally split into
//!   an immutable, `Sync` [`MlpTopology`] (shared across clients and
//!   worker threads) and the flat parameter buffer, so a federated
//!   client "clone" is a `copy_from_slice`.
//! * [`TrainScratch`] — the pooled training workspace (activations,
//!   backward caches, gradient, SGD velocity, minibatch staging) behind
//!   the allocation-free `_into` kernel family
//!   ([`MlpTopology::loss_and_grad_into`], [`MlpTopology::evaluate_into`]):
//!   after the first step sizes the buffers, a steady-state minibatch
//!   step performs no heap allocation. The linear layers inside are thin
//!   shims over the blocked `gluefl_tensor::gemm` micro-kernels
//!   (forward, backward-data, and accumulating backward-weights
//!   layouts), which preserve every reduction order — training
//!   trajectories are bit-identical to the naive per-element loops, and
//!   large eval batches shard GEMM row blocks across threads under the
//!   `parallel` feature.
//! * [`Sgd`] — minibatch SGD with momentum and step decay (the paper's
//!   optimizer: momentum 0.9, decay 0.98 every 10 rounds), plus the
//!   pooled-velocity form [`sgd_momentum_step`] used by the scratch path
//!   (identical update rule, pinned by unit tests).
//! * [`ModelProfile`] — named configurations standing in for the paper's
//!   three architectures, including their *reference* parameter counts so
//!   bandwidth can be reported at paper scale.
//!
//! # Example
//!
//! ```
//! use gluefl_ml::{Mlp, MlpConfig, Sgd};
//! use rand::SeedableRng;
//!
//! let cfg = MlpConfig {
//!     input_dim: 8,
//!     hidden: vec![16],
//!     classes: 4,
//!     batch_norm: true,
//! };
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut model = Mlp::new(cfg, &mut rng);
//! let x = vec![0.5f32; 8 * 2]; // batch of 2
//! let y = vec![1usize, 3];
//! let mut opt = Sgd::new(model.num_params(), 0.05, 0.9);
//! for _ in 0..10 {
//!     let (loss, grad) = model.loss_and_grad(&x, &y);
//!     assert!(loss.is_finite());
//!     opt.step(model.params_mut(), &grad);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod init;
mod layout;
pub mod loss;
mod mlp;
mod optimizer;
mod profiles;
mod scratch;

pub use batch::BatchTrainScratch;
pub use layout::{ParamKind, ParamLayout, ParamLayoutBuilder, Segment};
pub use mlp::{BatchNorm, EvalMetrics, Mlp, MlpConfig, MlpTopology};
pub use optimizer::{sgd_momentum_step, step_decay_lr, Sgd};
pub use profiles::{DatasetModel, ModelProfile};
pub use scratch::TrainScratch;
