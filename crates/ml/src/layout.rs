//! Flat parameter layouts: which positions are weights vs BN statistics.

use gluefl_tensor::BitMask;

/// What a contiguous range of flat parameters represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParamKind {
    /// A trainable weight (dense/BN affine): masked, sparsified, and
    /// aggregated with propensity weights like any other gradient.
    TrainableWeight,
    /// A non-trainable BatchNorm statistic (`running_mean`, `running_var`,
    /// `num_batches_tracked`): excluded from masks and aggregated with a
    /// plain `1/K` mean of client deltas (paper Appendix D).
    BnStatistic,
}

/// A named contiguous segment of the flat parameter vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Human-readable name, e.g. `"layer0.weight"`.
    pub name: String,
    /// Start offset (inclusive) in the flat vector.
    pub start: usize,
    /// End offset (exclusive).
    pub end: usize,
    /// What the segment holds.
    pub kind: ParamKind,
}

impl Segment {
    /// Number of parameters in the segment.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Returns `true` for zero-length segments.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// The full layout of a model's flat parameter vector.
///
/// Segments are contiguous, non-overlapping, and cover `0..total`.
///
/// # Example
///
/// ```
/// use gluefl_ml::{ParamKind, ParamLayout};
/// let mut b = ParamLayout::builder();
/// b.push("w", 10, ParamKind::TrainableWeight);
/// b.push("bn.running_mean", 4, ParamKind::BnStatistic);
/// let layout = b.finish();
/// assert_eq!(layout.total(), 14);
/// assert_eq!(layout.trainable_mask().count_ones(), 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamLayout {
    segments: Vec<Segment>,
    total: usize,
}

/// Incremental builder for [`ParamLayout`].
#[derive(Debug, Default)]
pub struct ParamLayoutBuilder {
    segments: Vec<Segment>,
    cursor: usize,
}

impl ParamLayoutBuilder {
    /// Appends a segment of `len` parameters and returns its start offset.
    pub fn push(&mut self, name: &str, len: usize, kind: ParamKind) -> usize {
        let start = self.cursor;
        self.segments.push(Segment {
            name: name.to_owned(),
            start,
            end: start + len,
            kind,
        });
        self.cursor += len;
        start
    }

    /// Finalises the layout.
    #[must_use]
    pub fn finish(self) -> ParamLayout {
        ParamLayout {
            segments: self.segments,
            total: self.cursor,
        }
    }
}

impl ParamLayout {
    /// Starts building a layout.
    #[must_use]
    pub fn builder() -> ParamLayoutBuilder {
        ParamLayoutBuilder::default()
    }

    /// Total number of flat parameters `d`.
    #[must_use]
    pub fn total(&self) -> usize {
        self.total
    }

    /// The segments in offset order.
    #[must_use]
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Number of trainable parameters.
    #[must_use]
    pub fn trainable_count(&self) -> usize {
        self.segments
            .iter()
            .filter(|s| s.kind == ParamKind::TrainableWeight)
            .map(Segment::len)
            .sum()
    }

    /// Number of BN-statistic parameters.
    #[must_use]
    pub fn statistic_count(&self) -> usize {
        self.total - self.trainable_count()
    }

    /// A mask over the flat vector with trainable positions set.
    #[must_use]
    pub fn trainable_mask(&self) -> BitMask {
        let mut m = BitMask::zeros(self.total);
        for s in &self.segments {
            if s.kind == ParamKind::TrainableWeight {
                for i in s.start..s.end {
                    m.set(i, true);
                }
            }
        }
        m
    }

    /// The kind of the parameter at flat offset `i`.
    ///
    /// # Panics
    /// Panics if `i >= total()`.
    #[must_use]
    pub fn kind_at(&self, i: usize) -> ParamKind {
        assert!(i < self.total, "offset {i} out of range {}", self.total);
        let idx = self.segments.partition_point(|s| s.end <= i);
        self.segments[idx].kind
    }

    /// Looks up a segment by name.
    #[must_use]
    pub fn segment(&self, name: &str) -> Option<&Segment> {
        self.segments.iter().find(|s| s.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> ParamLayout {
        let mut b = ParamLayout::builder();
        b.push("l0.w", 6, ParamKind::TrainableWeight);
        b.push("l0.b", 2, ParamKind::TrainableWeight);
        b.push("bn.mean", 2, ParamKind::BnStatistic);
        b.push("bn.var", 2, ParamKind::BnStatistic);
        b.push("l1.w", 4, ParamKind::TrainableWeight);
        b.finish()
    }

    #[test]
    fn totals_and_counts() {
        let l = layout();
        assert_eq!(l.total(), 16);
        assert_eq!(l.trainable_count(), 12);
        assert_eq!(l.statistic_count(), 4);
    }

    #[test]
    fn segments_are_contiguous() {
        let l = layout();
        let mut cursor = 0;
        for s in l.segments() {
            assert_eq!(s.start, cursor);
            cursor = s.end;
        }
        assert_eq!(cursor, l.total());
    }

    #[test]
    fn trainable_mask_matches_kinds() {
        let l = layout();
        let m = l.trainable_mask();
        for i in 0..l.total() {
            assert_eq!(
                m.get(i),
                l.kind_at(i) == ParamKind::TrainableWeight,
                "position {i}"
            );
        }
    }

    #[test]
    fn kind_at_boundaries() {
        let l = layout();
        assert_eq!(l.kind_at(0), ParamKind::TrainableWeight);
        assert_eq!(l.kind_at(7), ParamKind::TrainableWeight);
        assert_eq!(l.kind_at(8), ParamKind::BnStatistic);
        assert_eq!(l.kind_at(11), ParamKind::BnStatistic);
        assert_eq!(l.kind_at(12), ParamKind::TrainableWeight);
        assert_eq!(l.kind_at(15), ParamKind::TrainableWeight);
    }

    #[test]
    fn segment_lookup_by_name() {
        let l = layout();
        let s = l.segment("bn.var").unwrap();
        assert_eq!((s.start, s.end), (10, 12));
        assert!(l.segment("nope").is_none());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn kind_at_out_of_range_panics() {
        let _ = layout().kind_at(16);
    }

    #[test]
    fn empty_layout() {
        let l = ParamLayout::builder().finish();
        assert_eq!(l.total(), 0);
        assert_eq!(l.trainable_mask().len(), 0);
    }
}
