//! Weight initialisation.

use rand::Rng;

/// Kaiming-uniform initialisation for a linear layer's weight matrix:
/// `U(-b, b)` with `b = sqrt(6 / fan_in)` — the PyTorch default for
/// ReLU networks.
pub fn kaiming_uniform<R: Rng>(rng: &mut R, weights: &mut [f32], fan_in: usize) {
    let bound = (6.0 / fan_in.max(1) as f64).sqrt() as f32;
    for w in weights.iter_mut() {
        *w = rng.gen_range(-bound..bound);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn values_within_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut w = vec![0.0f32; 1000];
        kaiming_uniform(&mut rng, &mut w, 24);
        let bound = (6.0f64 / 24.0).sqrt() as f32;
        assert!(w.iter().all(|v| v.abs() <= bound));
        // Not degenerate: values actually vary.
        let distinct = w
            .iter()
            .map(|v| v.to_bits())
            .collect::<std::collections::HashSet<_>>();
        assert!(distinct.len() > 900);
    }

    #[test]
    fn approximately_zero_mean() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut w = vec![0.0f32; 100_000];
        kaiming_uniform(&mut rng, &mut w, 64);
        let mean: f64 = w.iter().map(|v| f64::from(*v)).sum::<f64>() / w.len() as f64;
        assert!(mean.abs() < 1e-3, "mean {mean}");
    }

    #[test]
    fn fan_in_zero_does_not_panic() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut w = vec![0.0f32; 4];
        kaiming_uniform(&mut rng, &mut w, 0);
        assert!(w.iter().all(|v| v.is_finite()));
    }
}
