//! Softmax cross-entropy loss and classification metrics.

/// Computes a numerically-stable log-softmax of `logits` in place,
/// row by row for a batch of `rows` examples with `classes` columns.
///
/// # Panics
/// Panics if `logits.len() != rows * classes` or `classes == 0`.
pub fn log_softmax_rows(logits: &mut [f32], rows: usize, classes: usize) {
    assert!(classes > 0, "need at least one class");
    assert_eq!(logits.len(), rows * classes, "logits shape mismatch");
    for r in 0..rows {
        let row = &mut logits[r * classes..(r + 1) * classes];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let log_sum: f32 = row.iter().map(|&v| (v - max).exp()).sum::<f32>().ln() + max;
        for v in row.iter_mut() {
            *v -= log_sum;
        }
    }
}

/// Mean negative log-likelihood of the true labels given row-wise
/// log-probabilities, plus the gradient w.r.t. the *logits*
/// (`softmax − one_hot`, scaled by `1/rows`), written into `grad_logits`.
///
/// Returns the mean loss.
///
/// # Panics
/// Panics on shape mismatches or out-of-range labels.
pub fn nll_and_grad(
    log_probs: &[f32],
    labels: &[usize],
    classes: usize,
    grad_logits: &mut [f32],
) -> f64 {
    let rows = labels.len();
    assert_eq!(log_probs.len(), rows * classes, "log-probs shape mismatch");
    assert_eq!(grad_logits.len(), rows * classes, "grad shape mismatch");
    let inv = 1.0 / rows.max(1) as f32;
    let mut loss = 0.0f64;
    for (r, &label) in labels.iter().enumerate() {
        assert!(label < classes, "label {label} out of range {classes}");
        let row = &log_probs[r * classes..(r + 1) * classes];
        loss -= f64::from(row[label]);
        let grad_row = &mut grad_logits[r * classes..(r + 1) * classes];
        for (c, g) in grad_row.iter_mut().enumerate() {
            let p = row[c].exp();
            *g = (p - if c == label { 1.0 } else { 0.0 }) * inv;
        }
    }
    loss / rows.max(1) as f64
}

/// Fraction of rows whose arg-max log-probability matches the label.
///
/// # Panics
/// Panics on shape mismatch.
#[must_use]
pub fn accuracy(log_probs: &[f32], labels: &[usize], classes: usize) -> f64 {
    let rows = labels.len();
    assert_eq!(log_probs.len(), rows * classes, "log-probs shape mismatch");
    if rows == 0 {
        return 0.0;
    }
    let mut correct = 0usize;
    for (r, &label) in labels.iter().enumerate() {
        let row = &log_probs[r * classes..(r + 1) * classes];
        let pred = argmax(row);
        if pred == label {
            correct += 1;
        }
    }
    correct as f64 / rows as f64
}

/// Fraction of rows whose label is within the top-5 predicted classes
/// (the paper reports Top-5 accuracy for OpenImage).
///
/// # Panics
/// Panics on shape mismatch.
#[must_use]
pub fn top5_accuracy(log_probs: &[f32], labels: &[usize], classes: usize) -> f64 {
    let rows = labels.len();
    assert_eq!(log_probs.len(), rows * classes, "log-probs shape mismatch");
    if rows == 0 {
        return 0.0;
    }
    let mut correct = 0usize;
    for (r, &label) in labels.iter().enumerate() {
        let row = &log_probs[r * classes..(r + 1) * classes];
        let target = row[label];
        // label is in the top-5 iff fewer than 5 classes strictly beat it
        // (ties resolved toward counting as a hit, matching torch.topk
        // index order closely enough for evaluation).
        let better = row.iter().filter(|&&v| v > target).count();
        if better < 5 {
            correct += 1;
        }
    }
    correct as f64 / rows as f64
}

fn argmax(row: &[f32]) -> usize {
    let mut best = 0usize;
    for (i, &v) in row.iter().enumerate() {
        if v > row[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_softmax_rows_normalises() {
        let mut logits = vec![1.0f32, 2.0, 3.0, -1.0, 0.0, 1.0];
        log_softmax_rows(&mut logits, 2, 3);
        for r in 0..2 {
            let total: f32 = logits[r * 3..(r + 1) * 3].iter().map(|v| v.exp()).sum();
            assert!((total - 1.0).abs() < 1e-5, "row {r} sums to {total}");
        }
    }

    #[test]
    fn log_softmax_is_shift_invariant() {
        let mut a = vec![1.0f32, 2.0, 3.0];
        let mut b = vec![101.0f32, 102.0, 103.0];
        log_softmax_rows(&mut a, 1, 3);
        log_softmax_rows(&mut b, 1, 3);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn log_softmax_handles_extreme_logits() {
        let mut logits = vec![1e4f32, -1e4, 0.0];
        log_softmax_rows(&mut logits, 1, 3);
        assert!(logits.iter().all(|v| v.is_finite()));
        assert!((logits[0]).abs() < 1e-3); // dominant class → log-prob ≈ 0
    }

    #[test]
    fn nll_grad_rows_sum_to_zero() {
        let mut logits = vec![0.3f32, -0.1, 0.5, 0.9, 0.0, -0.4];
        log_softmax_rows(&mut logits, 2, 3);
        let mut grad = vec![0.0f32; 6];
        let loss = nll_and_grad(&logits, &[2, 0], 3, &mut grad);
        assert!(loss > 0.0);
        for r in 0..2 {
            let s: f32 = grad[r * 3..(r + 1) * 3].iter().sum();
            assert!(s.abs() < 1e-6, "row {r} grad sums to {s}");
        }
    }

    #[test]
    fn nll_perfect_prediction_has_small_loss_and_grad() {
        // Very confident, correct prediction.
        let mut logits = vec![20.0f32, 0.0, 0.0];
        log_softmax_rows(&mut logits, 1, 3);
        let mut grad = vec![0.0f32; 3];
        let loss = nll_and_grad(&logits, &[0], 3, &mut grad);
        assert!(loss < 1e-6);
        assert!(grad.iter().all(|g| g.abs() < 1e-6));
    }

    #[test]
    fn uniform_prediction_loss_is_log_classes() {
        let mut logits = vec![0.0f32; 4];
        log_softmax_rows(&mut logits, 1, 4);
        let mut grad = vec![0.0f32; 4];
        let loss = nll_and_grad(&logits, &[1], 4, &mut grad);
        assert!((loss - 4.0f64.ln()).abs() < 1e-6);
    }

    #[test]
    fn accuracy_counts_argmax_matches() {
        let mut logits = vec![
            2.0f32, 0.0, 0.0, // pred 0
            0.0, 3.0, 0.0, // pred 1
            0.0, 0.0, 1.0, // pred 2
        ];
        log_softmax_rows(&mut logits, 3, 3);
        assert!((accuracy(&logits, &[0, 1, 0], 3) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn top5_reduces_to_hit_when_classes_small() {
        let mut logits = vec![0.1f32, 0.2, 0.3];
        log_softmax_rows(&mut logits, 1, 3);
        // With 3 classes everything is in the top 5.
        assert_eq!(top5_accuracy(&logits, &[0], 3), 1.0);
    }

    #[test]
    fn top5_on_many_classes() {
        // Label ranked 6th → miss; ranked 5th → hit.
        let mut logits: Vec<f32> = (0..10).map(|i| -(i as f32)).collect();
        log_softmax_rows(&mut logits, 1, 10);
        assert_eq!(top5_accuracy(&logits, &[5], 10), 0.0);
        assert_eq!(top5_accuracy(&logits, &[4], 10), 1.0);
    }

    #[test]
    fn empty_batch_accuracy_is_zero() {
        assert_eq!(accuracy(&[], &[], 3), 0.0);
        assert_eq!(top5_accuracy(&[], &[], 3), 0.0);
    }

    #[test]
    #[should_panic(expected = "label")]
    fn out_of_range_label_panics() {
        let logits = vec![0.0f32; 3];
        let mut grad = vec![0.0f32; 3];
        let _ = nll_and_grad(&logits, &[3], 3, &mut grad);
    }
}
