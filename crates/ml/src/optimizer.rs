//! Minibatch SGD with momentum and step decay.

/// SGD with (heavy-ball) momentum, the paper's client optimizer
/// ("PyTorch's SGD optimizer with a momentum factor of 0.9", §5.1).
///
/// Update rule (PyTorch semantics):
/// `v ← μ·v + g` ; `w ← w − γ·v`.
///
/// Momentum buffers live in the optimizer, not the model — in federated
/// training each client builds a fresh optimizer per round, so momentum
/// spans only the `E` local steps, as in the paper's setup.
///
/// # Example
///
/// ```
/// use gluefl_ml::Sgd;
/// let mut opt = Sgd::new(2, 0.1, 0.9);
/// let mut w = vec![1.0f32, -1.0];
/// opt.step(&mut w, &[1.0, 1.0]);
/// assert_eq!(w, vec![0.9, -1.1]);
/// // Second step: momentum kicks in (v = 0.9·1 + 1 = 1.9).
/// opt.step(&mut w, &[1.0, 1.0]);
/// assert!((w[0] - (0.9 - 0.19)).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    velocity: Vec<f32>,
    lr: f32,
    momentum: f32,
}

impl Sgd {
    /// Creates an optimizer for `dim` parameters.
    ///
    /// # Panics
    /// Panics if `lr <= 0` or `momentum` is outside `[0, 1)`.
    #[must_use]
    pub fn new(dim: usize, lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
        Self {
            velocity: vec![0.0; dim],
            lr,
            momentum,
        }
    }

    /// Current learning rate.
    #[must_use]
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Replaces the learning rate (used for the 0.98-every-10-rounds decay).
    ///
    /// # Panics
    /// Panics if `lr <= 0`.
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }

    /// Applies one update step in place.
    ///
    /// # Panics
    /// Panics if `params.len()` or `grad.len()` differ from the
    /// constructor's `dim`.
    pub fn step(&mut self, params: &mut [f32], grad: &[f32]) {
        assert_eq!(params.len(), self.velocity.len(), "params length mismatch");
        assert_eq!(grad.len(), self.velocity.len(), "grad length mismatch");
        for ((w, g), v) in params.iter_mut().zip(grad).zip(&mut self.velocity) {
            *v = self.momentum * *v + g;
            *w -= self.lr * *v;
        }
    }
}

/// The paper's learning-rate schedule: `initial · decay^(round / every)`
/// with `decay = 0.98`, `every = 10` (§5.1).
///
/// # Example
/// ```
/// let lr = gluefl_ml::step_decay_lr(0.05, 0.98, 10, 25);
/// assert!((lr - 0.05 * 0.98f32.powi(2)).abs() < 1e-9);
/// ```
#[must_use]
pub fn step_decay_lr(initial: f32, decay: f32, every_rounds: u32, round: u32) -> f32 {
    initial * decay.powi((round / every_rounds.max(1)) as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_sgd_matches_hand_calculation() {
        let mut opt = Sgd::new(1, 0.5, 0.0);
        let mut w = vec![2.0f32];
        opt.step(&mut w, &[4.0]);
        assert_eq!(w, vec![0.0]);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut opt = Sgd::new(1, 1.0, 0.5);
        let mut w = vec![0.0f32];
        opt.step(&mut w, &[1.0]); // v=1, w=-1
        opt.step(&mut w, &[1.0]); // v=1.5, w=-2.5
        opt.step(&mut w, &[1.0]); // v=1.75, w=-4.25
        assert!((w[0] + 4.25).abs() < 1e-6);
    }

    #[test]
    fn zero_grad_with_momentum_still_moves() {
        let mut opt = Sgd::new(1, 1.0, 0.5);
        let mut w = vec![0.0f32];
        opt.step(&mut w, &[1.0]);
        opt.step(&mut w, &[0.0]); // coasting on momentum: v=0.5
        assert!((w[0] + 1.5).abs() < 1e-6);
    }

    #[test]
    fn lr_schedule_decays_stepwise() {
        assert_eq!(step_decay_lr(0.01, 0.98, 10, 0), 0.01);
        assert_eq!(step_decay_lr(0.01, 0.98, 10, 9), 0.01);
        assert!((step_decay_lr(0.01, 0.98, 10, 10) - 0.0098).abs() < 1e-9);
        assert!((step_decay_lr(0.01, 0.98, 10, 100) - 0.01 * 0.98f32.powi(10)).abs() < 1e-9);
    }

    #[test]
    fn set_lr_takes_effect() {
        let mut opt = Sgd::new(1, 1.0, 0.0);
        opt.set_lr(0.1);
        let mut w = vec![1.0f32];
        opt.step(&mut w, &[1.0]);
        assert!((w[0] - 0.9).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn rejects_zero_lr() {
        let _ = Sgd::new(1, 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "momentum must be in [0,1)")]
    fn rejects_momentum_one() {
        let _ = Sgd::new(1, 0.1, 1.0);
    }
}
