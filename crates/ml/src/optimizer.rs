//! Minibatch SGD with momentum and step decay.

/// SGD with (heavy-ball) momentum, the paper's client optimizer
/// ("PyTorch's SGD optimizer with a momentum factor of 0.9", §5.1).
///
/// Update rule (PyTorch semantics):
/// `v ← μ·v + g` ; `w ← w − γ·v`.
///
/// Momentum buffers live in the optimizer, not the model — in federated
/// training each client builds a fresh optimizer per round, so momentum
/// spans only the `E` local steps, as in the paper's setup.
///
/// # Example
///
/// ```
/// use gluefl_ml::Sgd;
/// let mut opt = Sgd::new(2, 0.1, 0.9);
/// let mut w = vec![1.0f32, -1.0];
/// opt.step(&mut w, &[1.0, 1.0]);
/// assert_eq!(w, vec![0.9, -1.1]);
/// // Second step: momentum kicks in (v = 0.9·1 + 1 = 1.9).
/// opt.step(&mut w, &[1.0, 1.0]);
/// assert!((w[0] - (0.9 - 0.19)).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    velocity: Vec<f32>,
    lr: f32,
    momentum: f32,
}

impl Sgd {
    /// Creates an optimizer for `dim` parameters.
    ///
    /// # Panics
    /// Panics if `lr <= 0` or `momentum` is outside `[0, 1)`.
    #[must_use]
    pub fn new(dim: usize, lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
        Self {
            velocity: vec![0.0; dim],
            lr,
            momentum,
        }
    }

    /// Current learning rate.
    #[must_use]
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Replaces the learning rate (used for the 0.98-every-10-rounds decay).
    ///
    /// # Panics
    /// Panics if `lr <= 0`.
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }

    /// Applies one update step in place.
    ///
    /// # Panics
    /// Panics if `params.len()` or `grad.len()` differ from the
    /// constructor's `dim`.
    pub fn step(&mut self, params: &mut [f32], grad: &[f32]) {
        sgd_momentum_step(params, grad, &mut self.velocity, self.lr, self.momentum);
    }
}

/// One SGD-with-momentum update over a caller-owned velocity buffer:
/// `v ← μ·v + g` ; `w ← w − γ·v` (PyTorch semantics, identical to
/// [`Sgd::step`] — which delegates here).
///
/// This is the pooled-buffer form used by the allocation-free training
/// path: a worker zeroes one recycled `velocity` per client
/// ([`crate::TrainScratch::reset_velocity`]) instead of allocating a
/// fresh optimizer, and the velocity carries across the client's local
/// steps exactly as the struct form would.
///
/// # Panics
/// Panics if `params`, `grad`, and `velocity` lengths differ.
pub fn sgd_momentum_step(
    params: &mut [f32],
    grad: &[f32],
    velocity: &mut [f32],
    lr: f32,
    momentum: f32,
) {
    assert_eq!(params.len(), velocity.len(), "params length mismatch");
    assert_eq!(grad.len(), velocity.len(), "grad length mismatch");
    for ((w, g), v) in params.iter_mut().zip(grad).zip(velocity.iter_mut()) {
        *v = momentum * *v + g;
        *w -= lr * *v;
    }
}

/// The paper's learning-rate schedule: `initial · decay^(round / every)`
/// with `decay = 0.98`, `every = 10` (§5.1).
///
/// # Example
/// ```
/// let lr = gluefl_ml::step_decay_lr(0.05, 0.98, 10, 25);
/// assert!((lr - 0.05 * 0.98f32.powi(2)).abs() < 1e-9);
/// ```
#[must_use]
pub fn step_decay_lr(initial: f32, decay: f32, every_rounds: u32, round: u32) -> f32 {
    initial * decay.powi((round / every_rounds.max(1)) as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_sgd_matches_hand_calculation() {
        let mut opt = Sgd::new(1, 0.5, 0.0);
        let mut w = vec![2.0f32];
        opt.step(&mut w, &[4.0]);
        assert_eq!(w, vec![0.0]);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut opt = Sgd::new(1, 1.0, 0.5);
        let mut w = vec![0.0f32];
        opt.step(&mut w, &[1.0]); // v=1, w=-1
        opt.step(&mut w, &[1.0]); // v=1.5, w=-2.5
        opt.step(&mut w, &[1.0]); // v=1.75, w=-4.25
        assert!((w[0] + 4.25).abs() < 1e-6);
    }

    #[test]
    fn zero_grad_with_momentum_still_moves() {
        let mut opt = Sgd::new(1, 1.0, 0.5);
        let mut w = vec![0.0f32];
        opt.step(&mut w, &[1.0]);
        opt.step(&mut w, &[0.0]); // coasting on momentum: v=0.5
        assert!((w[0] + 1.5).abs() < 1e-6);
    }

    #[test]
    fn lr_schedule_decays_stepwise() {
        assert_eq!(step_decay_lr(0.01, 0.98, 10, 0), 0.01);
        assert_eq!(step_decay_lr(0.01, 0.98, 10, 9), 0.01);
        assert!((step_decay_lr(0.01, 0.98, 10, 10) - 0.0098).abs() < 1e-9);
        assert!((step_decay_lr(0.01, 0.98, 10, 100) - 0.01 * 0.98f32.powi(10)).abs() < 1e-9);
    }

    #[test]
    fn set_lr_takes_effect() {
        let mut opt = Sgd::new(1, 1.0, 0.0);
        opt.set_lr(0.1);
        let mut w = vec![1.0f32];
        opt.step(&mut w, &[1.0]);
        assert!((w[0] - 0.9).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn rejects_zero_lr() {
        let _ = Sgd::new(1, 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "momentum must be in [0,1)")]
    fn rejects_momentum_one() {
        let _ = Sgd::new(1, 0.1, 1.0);
    }

    /// Pins the update rule across velocity reuse: the pooled free-fn
    /// form over one recycled buffer must match the struct form bit for
    /// bit on every step, so the allocation-free refactor cannot silently
    /// change SGD semantics.
    #[test]
    fn pooled_velocity_matches_struct_bitwise_across_steps() {
        let grads: [Vec<f32>; 4] = [
            vec![0.3, -1.2, 0.0],
            vec![-0.7, 0.4, 2.5],
            vec![0.0, 0.0, -0.1],
            vec![1.5, -0.5, 0.25],
        ];
        let mut opt = Sgd::new(3, 0.1, 0.9);
        let mut w_struct = vec![1.0f32, -2.0, 0.5];
        let mut w_pool = w_struct.clone();
        let mut velocity = vec![7.0f32; 3]; // stale values from a previous client
        velocity.fill(0.0); // the per-client reset
        for (step, g) in grads.iter().enumerate() {
            opt.step(&mut w_struct, g);
            sgd_momentum_step(&mut w_pool, g, &mut velocity, 0.1, 0.9);
            assert!(
                w_struct
                    .iter()
                    .zip(&w_pool)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "diverged at step {step}: {w_struct:?} vs {w_pool:?}"
            );
        }
        // Velocity genuinely accumulated (momentum > 0, nonzero grads).
        assert!(velocity.iter().any(|v| *v != 0.0));
    }

    /// Hand-computed velocity accumulation for the free-fn form — the
    /// same arithmetic [`Sgd`]'s doc example pins for the struct form.
    #[test]
    fn free_fn_velocity_accumulates_by_hand() {
        let mut w = vec![0.0f32];
        let mut v = vec![0.0f32];
        sgd_momentum_step(&mut w, &[1.0], &mut v, 1.0, 0.5); // v=1, w=-1
        sgd_momentum_step(&mut w, &[1.0], &mut v, 1.0, 0.5); // v=1.5, w=-2.5
        sgd_momentum_step(&mut w, &[0.0], &mut v, 1.0, 0.5); // coasting: v=0.75
        assert!((w[0] + 3.25).abs() < 1e-6);
        assert!((v[0] - 0.75).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "grad length mismatch")]
    fn free_fn_rejects_length_mismatch() {
        let mut w = vec![0.0f32; 2];
        let mut v = vec![0.0f32; 2];
        sgd_momentum_step(&mut w, &[1.0], &mut v, 0.1, 0.0);
    }
}
