//! Multi-layer perceptron with optional BatchNorm over flat parameters.
//!
//! The model is split into two halves so federated simulations can train
//! many clients without deep-cloning anything:
//!
//! * [`MlpTopology`] — immutable architecture: config, [`ParamLayout`],
//!   and per-layer offsets into the flat parameter vector. Shared by
//!   reference across every client (and across worker threads).
//! * a flat `Vec<f32>` parameter buffer — a client "clone" is a
//!   `copy_from_slice` into a pooled buffer.
//!
//! [`Mlp`] bundles the two for convenience APIs; the hot path is the
//! `_into` kernel family on [`MlpTopology`]
//! ([`MlpTopology::loss_and_grad_into`], [`MlpTopology::evaluate_into`]),
//! which writes activations, caches, gradients, and velocity into a
//! caller-owned [`TrainScratch`] and performs no steady-state heap
//! allocation per minibatch step.

use crate::init::kaiming_uniform;
use crate::layout::{ParamKind, ParamLayout};
use crate::loss::{accuracy, log_softmax_rows, nll_and_grad, top5_accuracy};
use crate::scratch::{LayerScratch, TrainScratch};
use gluefl_tensor::gemm;
use rand::Rng;

/// Configuration of an [`Mlp`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MlpConfig {
    /// Input feature dimension.
    pub input_dim: usize,
    /// Hidden layer widths (empty = multinomial logistic regression).
    pub hidden: Vec<usize>,
    /// Number of output classes.
    pub classes: usize,
    /// Insert a BatchNorm after each hidden linear layer.
    pub batch_norm: bool,
}

/// Offsets of one linear layer inside the flat parameter vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct LinearSpec {
    pub(crate) in_dim: usize,
    pub(crate) out_dim: usize,
    /// Weight matrix `[out_dim × in_dim]`, row-major.
    pub(crate) w_off: usize,
    /// Bias vector `[out_dim]`.
    pub(crate) b_off: usize,
}

/// Offsets and hyper-parameters of one BatchNorm layer.
///
/// Five parameter groups, mirroring `torch.nn.BatchNorm1d` (paper
/// Appendix D): trainable `weight` (gamma) and `bias` (beta), plus the
/// non-trainable statistics `running_mean`, `running_var`, and
/// `num_batches_tracked` (stored as a single f32 count).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchNorm {
    pub(crate) dim: usize,
    pub(crate) gamma_off: usize,
    pub(crate) beta_off: usize,
    pub(crate) mean_off: usize,
    pub(crate) var_off: usize,
    pub(crate) count_off: usize,
    /// Running-statistics update rate (PyTorch default 0.1).
    pub momentum: f32,
    /// Variance epsilon (PyTorch default 1e-5).
    pub eps: f32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Mode {
    /// Batch statistics; optionally update running statistics afterwards.
    Train { update_stats: bool },
    /// Running statistics; no side effects.
    Eval,
}

/// Evaluation metrics produced by [`Mlp::evaluate`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EvalMetrics {
    /// Mean cross-entropy loss.
    pub loss: f64,
    /// Top-1 accuracy in `[0, 1]`.
    pub top1: f64,
    /// Top-5 accuracy in `[0, 1]`.
    pub top5: f64,
}

/// The immutable architecture of an [`Mlp`]: configuration, flat-parameter
/// layout, and per-layer offsets.
///
/// A topology is built once (by [`Mlp::new`]) and shared by reference —
/// it is `Sync`, so parallel client training hands `&MlpTopology` to every
/// worker thread and each worker brings its own parameter buffer and
/// [`TrainScratch`]. All training/eval kernels live here; [`Mlp`] wraps
/// them for the single-model case.
#[derive(Debug, Clone, PartialEq)]
pub struct MlpTopology {
    cfg: MlpConfig,
    layout: ParamLayout,
    pub(crate) linears: Vec<LinearSpec>,
    pub(crate) bns: Vec<Option<BatchNorm>>,
}

/// A multi-layer perceptron over one flat `Vec<f32>` parameter vector.
///
/// Architecture: `[Linear → (BatchNorm) → ReLU] × hidden.len() → Linear`,
/// trained with softmax cross-entropy. All parameters — including the
/// BatchNorm running statistics — live in a single flat vector exposed via
/// [`Mlp::params`], so federated-learning code can mask, sparsify, diff,
/// and aggregate positions without knowing the architecture.
///
/// # Example
///
/// ```
/// use gluefl_ml::{Mlp, MlpConfig};
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let model = Mlp::new(
///     MlpConfig { input_dim: 4, hidden: vec![8], classes: 3, batch_norm: false },
///     &mut rng,
/// );
/// // 4·8 + 8 weights+bias, 8·3 + 3 output layer.
/// assert_eq!(model.num_params(), 4 * 8 + 8 + 8 * 3 + 3);
/// ```
#[derive(Debug, Clone)]
pub struct Mlp {
    topo: MlpTopology,
    params: Vec<f32>,
}

impl MlpTopology {
    /// The model configuration.
    #[must_use]
    pub fn config(&self) -> &MlpConfig {
        &self.cfg
    }

    /// The flat-parameter layout (trainable vs BN-statistic positions).
    #[must_use]
    pub fn layout(&self) -> &ParamLayout {
        &self.layout
    }

    /// Total number of flat parameters `d`.
    #[must_use]
    pub fn num_params(&self) -> usize {
        self.layout.total()
    }

    fn check_params(&self, params: &[f32]) {
        assert_eq!(params.len(), self.num_params(), "parameter length mismatch");
    }

    fn check_batch(&self, x: &[f32], y: &[usize]) -> usize {
        assert_eq!(x.len() % self.cfg.input_dim, 0, "input shape mismatch");
        let batch = x.len() / self.cfg.input_dim;
        assert_eq!(batch, y.len(), "batch/label count mismatch");
        batch
    }

    /// Mean loss and flat gradient on one minibatch, in training mode
    /// (BatchNorm uses batch statistics and updates the running
    /// statistics inside `params`, mirroring a PyTorch training step).
    ///
    /// The gradient is left in [`TrainScratch::grad`] — entries at
    /// BN-statistic positions are zero. After the scratch has been sized
    /// by a first call (see [`TrainScratch::ensure`]) this performs no
    /// heap allocation.
    ///
    /// # Panics
    /// Panics if `params.len() != num_params()`, `x.len()` is not a
    /// multiple of `input_dim`, the implied batch size differs from
    /// `y.len()`, or a label is out of range.
    pub fn loss_and_grad_into(
        &self,
        params: &mut [f32],
        x: &[f32],
        y: &[usize],
        scratch: &mut TrainScratch,
    ) -> f64 {
        self.loss_and_grad_mode_into(params, x, y, Mode::Train { update_stats: true }, scratch)
    }

    /// Like [`MlpTopology::loss_and_grad_into`] but *without* the
    /// running-statistics side effect (finite-difference tests, line
    /// searches).
    pub fn loss_and_grad_frozen_into(
        &self,
        params: &mut [f32],
        x: &[f32],
        y: &[usize],
        scratch: &mut TrainScratch,
    ) -> f64 {
        self.loss_and_grad_mode_into(
            params,
            x,
            y,
            Mode::Train {
                update_stats: false,
            },
            scratch,
        )
    }

    /// Training-mode loss only (batch statistics, no side effects, no
    /// gradient work).
    #[must_use]
    pub fn training_loss_into(
        &self,
        params: &[f32],
        x: &[f32],
        y: &[usize],
        scratch: &mut TrainScratch,
    ) -> f64 {
        self.check_params(params);
        let batch = self.check_batch(x, y);
        scratch.ensure(self, batch);
        let TrainScratch {
            layers,
            logits,
            d_logits,
            ..
        } = scratch;
        self.forward_into(
            params,
            x,
            batch,
            Mode::Train {
                update_stats: false,
            },
            layers,
            logits,
        );
        log_softmax_rows(logits, batch, self.cfg.classes);
        nll_and_grad(logits, y, self.cfg.classes, d_logits)
    }

    /// Evaluates loss / top-1 / top-5 on a labelled set, in eval mode
    /// (running statistics, no side effects, no model clone).
    ///
    /// # Panics
    /// Panics on shape mismatches.
    #[must_use]
    pub fn evaluate_into(
        &self,
        params: &[f32],
        x: &[f32],
        y: &[usize],
        scratch: &mut TrainScratch,
    ) -> EvalMetrics {
        self.check_params(params);
        let batch = self.check_batch(x, y);
        if batch == 0 {
            return EvalMetrics::default();
        }
        scratch.ensure(self, batch);
        let TrainScratch {
            layers,
            logits,
            d_logits,
            ..
        } = scratch;
        self.forward_into(params, x, batch, Mode::Eval, layers, logits);
        log_softmax_rows(logits, batch, self.cfg.classes);
        let loss = nll_and_grad(logits, y, self.cfg.classes, d_logits);
        EvalMetrics {
            loss,
            top1: accuracy(logits, y, self.cfg.classes),
            top5: top5_accuracy(logits, y, self.cfg.classes),
        }
    }

    /// Row-wise log-probabilities in eval mode, left in (and returned
    /// from) the scratch's logit buffer.
    ///
    /// # Panics
    /// Panics on shape mismatches.
    pub fn predict_log_probs_into<'s>(
        &self,
        params: &[f32],
        x: &[f32],
        scratch: &'s mut TrainScratch,
    ) -> &'s [f32] {
        self.check_params(params);
        assert_eq!(x.len() % self.cfg.input_dim, 0, "input shape mismatch");
        let batch = x.len() / self.cfg.input_dim;
        scratch.ensure(self, batch);
        let TrainScratch { layers, logits, .. } = scratch;
        self.forward_into(params, x, batch, Mode::Eval, layers, logits);
        log_softmax_rows(logits, batch, self.cfg.classes);
        logits
    }

    fn loss_and_grad_mode_into(
        &self,
        params: &mut [f32],
        x: &[f32],
        y: &[usize],
        mode: Mode,
        scratch: &mut TrainScratch,
    ) -> f64 {
        self.check_params(params);
        let batch = self.check_batch(x, y);
        let classes = self.cfg.classes;
        scratch.ensure(self, batch);
        let TrainScratch {
            layers,
            logits,
            d_logits,
            grad,
            d_bufs,
            sum_dy,
            sum_dy_xhat,
            ..
        } = scratch;
        self.forward_into(params, x, batch, mode, layers, logits);
        log_softmax_rows(logits, batch, classes);
        let loss = nll_and_grad(logits, y, classes, d_logits);
        grad.fill(0.0);
        self.backward_into(
            params,
            x,
            batch,
            layers,
            d_logits,
            grad,
            d_bufs,
            sum_dy,
            sum_dy_xhat,
        );
        // The running-statistics update is deferred to after the backward
        // pass: nothing in training mode *reads* the running statistics,
        // and the BN-statistic positions are disjoint from the weights, so
        // the result is bit-identical to updating them mid-forward — but
        // the forward/backward kernels get to borrow `params` immutably.
        if let Mode::Train { update_stats: true } = mode {
            self.apply_bn_stat_updates(params, batch, layers);
        }
        loss
    }

    /// Runs the forward pass, writing raw logits into `logits` and the
    /// backward caches into `layers`. Reads `params` only.
    fn forward_into(
        &self,
        params: &[f32],
        x: &[f32],
        batch: usize,
        mode: Mode,
        layers: &mut [LayerScratch],
        logits: &mut [f32],
    ) {
        let n_hidden = self.cfg.hidden.len();
        for i in 0..n_hidden {
            let (done, rest) = layers.split_at_mut(i);
            let ls = &mut rest[0];
            let input: &[f32] = if i == 0 { x } else { &done[i - 1].act };
            let lin = self.linears[i];
            linear_forward_into(params, lin, input, batch, &mut ls.z);
            match self.bns[i] {
                Some(bn) => bn_forward_into(
                    params,
                    bn,
                    &ls.z,
                    batch,
                    mode,
                    &mut ls.mu,
                    &mut ls.var,
                    &mut ls.inv_std,
                    &mut ls.x_hat,
                    &mut ls.act,
                ),
                None => ls.act.copy_from_slice(&ls.z),
            }
            // ReLU (records the pass-through mask for the backward pass).
            for (v, m) in ls.act.iter_mut().zip(ls.relu_mask.iter_mut()) {
                *m = *v > 0.0;
                if !*m {
                    *v = 0.0;
                }
            }
        }
        let out_lin = *self.linears.last().expect("output layer exists");
        let input: &[f32] = if n_hidden == 0 {
            x
        } else {
            &layers[n_hidden - 1].act
        };
        linear_forward_into(params, out_lin, input, batch, logits);
    }

    /// Backward pass: accumulates the flat gradient into `grad`
    /// (pre-zeroed by the caller) from the caches written by
    /// [`MlpTopology::forward_into`].
    #[allow(clippy::too_many_arguments)]
    fn backward_into(
        &self,
        params: &[f32],
        x: &[f32],
        batch: usize,
        layers: &[LayerScratch],
        d_logits: &[f32],
        grad: &mut [f32],
        d_bufs: &mut [Vec<f32>; 3],
        sum_dy: &mut Vec<f32>,
        sum_dy_xhat: &mut Vec<f32>,
    ) {
        let n_hidden = self.cfg.hidden.len();
        let out_lin = *self.linears.last().expect("output layer exists");
        let out_input: &[f32] = if n_hidden == 0 {
            x
        } else {
            &layers[n_hidden - 1].act
        };
        let [buf_a, buf_b, buf_c] = d_bufs;
        linear_backward_into(params, out_lin, out_input, batch, d_logits, grad, buf_a);
        // Three activation-gradient buffers rotate through the layers:
        // `d_cur` holds d(activation), `d_bn` receives the BN backward
        // output, `d_next` receives the next (earlier) layer's d(input).
        let mut d_cur: &mut Vec<f32> = buf_a;
        let mut d_bn: &mut Vec<f32> = buf_b;
        let mut d_next: &mut Vec<f32> = buf_c;
        for i in (0..n_hidden).rev() {
            let ls = &layers[i];
            // ReLU backward.
            for (d, &m) in d_cur.iter_mut().zip(&ls.relu_mask) {
                if !m {
                    *d = 0.0;
                }
            }
            // BatchNorm backward.
            let d_pre: &[f32] = match self.bns[i] {
                Some(bn) => {
                    d_bn.clear();
                    d_bn.resize(batch * bn.dim, 0.0);
                    bn_backward_into(
                        params,
                        bn,
                        &ls.x_hat,
                        &ls.inv_std,
                        batch,
                        d_cur,
                        grad,
                        sum_dy,
                        sum_dy_xhat,
                        d_bn,
                    );
                    d_bn
                }
                None => d_cur,
            };
            // Linear backward.
            let input: &[f32] = if i == 0 { x } else { &layers[i - 1].act };
            linear_backward_into(params, self.linears[i], input, batch, d_pre, grad, d_next);
            let freed = d_cur;
            d_cur = d_next;
            d_next = d_bn;
            d_bn = freed;
        }
    }

    /// Applies the deferred BatchNorm running-statistics updates (PyTorch
    /// semantics: `running ← (1−m)·running + m·batch_stat`, unbiased
    /// variance, `num_batches_tracked += 1`).
    fn apply_bn_stat_updates(&self, params: &mut [f32], batch: usize, layers: &[LayerScratch]) {
        let unbias = if batch > 1 {
            batch as f32 / (batch as f32 - 1.0)
        } else {
            1.0
        };
        for (bn, ls) in self.bns.iter().zip(layers) {
            let Some(bn) = bn else { continue };
            let m = bn.momentum;
            for o in 0..bn.dim {
                let rm = &mut params[bn.mean_off + o];
                *rm = (1.0 - m) * *rm + m * ls.mu[o];
                let rv = &mut params[bn.var_off + o];
                *rv = (1.0 - m) * *rv + m * ls.var[o] * unbias;
            }
            params[bn.count_off] += 1.0;
        }
    }
}

/// `out[r] = W · input[r] + b` for every row, written into the pre-sized
/// `out` slice (`batch × out_dim`).
///
/// A thin shim over the blocked [`gemm::gemm_nn`] kernel (`out = x·Wᵀ + b`,
/// the forward layout). Bit-identical to the per-element loop it replaced
/// — the GEMM preserves every output's reduction order — and, under the
/// `parallel` feature, large eval batches shard row blocks across
/// threads inside the kernel.
fn linear_forward_into(
    params: &[f32],
    lin: LinearSpec,
    input: &[f32],
    batch: usize,
    out: &mut [f32],
) {
    let w = &params[lin.w_off..lin.w_off + lin.in_dim * lin.out_dim];
    let b = &params[lin.b_off..lin.b_off + lin.out_dim];
    gemm::gemm_nn(input, w, b, batch, lin.out_dim, lin.in_dim, out);
}

/// Accumulates dW, db into `grad` and writes d(input) into `d_in`
/// (cleared and re-sized in place — allocation-free once capacity has
/// grown to the widest layer).
///
/// Two blocked GEMM calls plus a bias-column reduction: the weight
/// gradient is the accumulating [`gemm::gemm_nt`] (`dW += d_outᵀ·x`) and
/// the input gradient is [`gemm::gemm_tn`] (`d_in = d_out·W`). The old
/// fused per-element loop interleaved the three products; splitting them
/// changes no per-element reduction order (db over rows ascending, dW
/// over rows ascending on top of the existing gradient, d_in over output
/// features ascending from zero), so the bits are unchanged.
fn linear_backward_into(
    params: &[f32],
    lin: LinearSpec,
    input: &[f32],
    batch: usize,
    d_out: &[f32],
    grad: &mut [f32],
    d_in: &mut Vec<f32>,
) {
    let w = &params[lin.w_off..lin.w_off + lin.in_dim * lin.out_dim];
    d_in.clear();
    d_in.resize(batch * lin.in_dim, 0.0);
    // Disjoint gradient ranges (asserted at layout-build time).
    debug_assert!(lin.b_off >= lin.w_off + lin.in_dim * lin.out_dim || lin.b_off < lin.w_off);
    let gb = &mut grad[lin.b_off..lin.b_off + lin.out_dim];
    for drow in d_out.chunks_exact(lin.out_dim) {
        for (g, &d) in gb.iter_mut().zip(drow) {
            *g += d;
        }
    }
    let gw = &mut grad[lin.w_off..lin.w_off + lin.in_dim * lin.out_dim];
    gemm::gemm_nt(d_out, input, batch, lin.out_dim, lin.in_dim, gw);
    gemm::gemm_tn(d_out, w, batch, lin.out_dim, lin.in_dim, d_in);
}

/// BatchNorm forward into pre-sized scratch slices. In training mode the
/// batch statistics are left in `mu`/`var` for the caller's deferred
/// running-statistics update; `params` is only read.
#[allow(clippy::too_many_arguments)]
pub(crate) fn bn_forward_into(
    params: &[f32],
    bn: BatchNorm,
    z: &[f32],
    batch: usize,
    mode: Mode,
    mu: &mut [f32],
    var: &mut [f32],
    inv_std: &mut [f32],
    x_hat: &mut [f32],
    out: &mut [f32],
) {
    let dim = bn.dim;
    match mode {
        Mode::Train { .. } => {
            mu.fill(0.0);
            var.fill(0.0);
            let inv_b = 1.0 / batch as f32;
            for r in 0..batch {
                for (o, m) in mu.iter_mut().enumerate() {
                    *m += z[r * dim + o] * inv_b;
                }
            }
            for r in 0..batch {
                for (o, v) in var.iter_mut().enumerate() {
                    let d = z[r * dim + o] - mu[o];
                    *v += d * d * inv_b;
                }
            }
        }
        Mode::Eval => {
            mu.copy_from_slice(&params[bn.mean_off..bn.mean_off + dim]);
            var.copy_from_slice(&params[bn.var_off..bn.var_off + dim]);
        }
    }
    for (s, v) in inv_std.iter_mut().zip(var.iter()) {
        *s = 1.0 / (v + bn.eps).sqrt();
    }
    let gamma = &params[bn.gamma_off..bn.gamma_off + dim];
    let beta = &params[bn.beta_off..bn.beta_off + dim];
    for r in 0..batch {
        for o in 0..dim {
            let xh = (z[r * dim + o] - mu[o]) * inv_std[o];
            x_hat[r * dim + o] = xh;
            out[r * dim + o] = gamma[o] * xh + beta[o];
        }
    }
}

/// BatchNorm backward (training mode, batch statistics). Accumulates
/// dγ, dβ into `grad` and writes d(pre-BN input) into the pre-sized
/// `d_in` slice (`batch × dim`, fully overwritten).
#[allow(clippy::too_many_arguments)]
pub(crate) fn bn_backward_into(
    params: &[f32],
    bn: BatchNorm,
    x_hat: &[f32],
    inv_std: &[f32],
    batch: usize,
    d_out: &[f32],
    grad: &mut [f32],
    sum_dy: &mut Vec<f32>,
    sum_dy_xhat: &mut Vec<f32>,
    d_in: &mut [f32],
) {
    let dim = bn.dim;
    let gamma = &params[bn.gamma_off..bn.gamma_off + dim];
    let b = batch as f32;
    // Per-feature reductions.
    sum_dy.clear();
    sum_dy.resize(dim, 0.0);
    sum_dy_xhat.clear();
    sum_dy_xhat.resize(dim, 0.0);
    for r in 0..batch {
        for o in 0..dim {
            let dy = d_out[r * dim + o];
            sum_dy[o] += dy;
            sum_dy_xhat[o] += dy * x_hat[r * dim + o];
        }
    }
    for o in 0..dim {
        grad[bn.gamma_off + o] += sum_dy_xhat[o];
        grad[bn.beta_off + o] += sum_dy[o];
    }
    assert_eq!(d_in.len(), batch * dim, "BN backward d_in shape mismatch");
    for r in 0..batch {
        for o in 0..dim {
            let dy = d_out[r * dim + o];
            let xh = x_hat[r * dim + o];
            d_in[r * dim + o] =
                gamma[o] * inv_std[o] / b * (b * dy - sum_dy[o] - xh * sum_dy_xhat[o]);
        }
    }
}

impl Mlp {
    /// Builds and initialises a model (Kaiming-uniform weights, zero
    /// biases, BN gamma 1 / beta 0 / mean 0 / var 1 / count 0).
    ///
    /// # Panics
    /// Panics if `input_dim == 0` or `classes == 0`.
    #[must_use]
    pub fn new<R: Rng>(cfg: MlpConfig, rng: &mut R) -> Self {
        assert!(cfg.input_dim > 0, "input_dim must be positive");
        assert!(cfg.classes > 0, "classes must be positive");
        let mut b = ParamLayout::builder();
        let mut linears = Vec::new();
        let mut bns = Vec::new();
        let mut in_dim = cfg.input_dim;
        for (i, &h) in cfg.hidden.iter().enumerate() {
            assert!(h > 0, "hidden layer {i} must be positive");
            let w_off = b.push(
                &format!("l{i}.weight"),
                in_dim * h,
                ParamKind::TrainableWeight,
            );
            let b_off = b.push(&format!("l{i}.bias"), h, ParamKind::TrainableWeight);
            linears.push(LinearSpec {
                in_dim,
                out_dim: h,
                w_off,
                b_off,
            });
            if cfg.batch_norm {
                let gamma_off = b.push(&format!("bn{i}.weight"), h, ParamKind::TrainableWeight);
                let beta_off = b.push(&format!("bn{i}.bias"), h, ParamKind::TrainableWeight);
                let mean_off = b.push(&format!("bn{i}.running_mean"), h, ParamKind::BnStatistic);
                let var_off = b.push(&format!("bn{i}.running_var"), h, ParamKind::BnStatistic);
                let count_off = b.push(
                    &format!("bn{i}.num_batches_tracked"),
                    1,
                    ParamKind::BnStatistic,
                );
                bns.push(Some(BatchNorm {
                    dim: h,
                    gamma_off,
                    beta_off,
                    mean_off,
                    var_off,
                    count_off,
                    momentum: 0.1,
                    eps: 1e-5,
                }));
            } else {
                bns.push(None);
            }
            in_dim = h;
        }
        let w_off = b.push(
            "out.weight",
            in_dim * cfg.classes,
            ParamKind::TrainableWeight,
        );
        let b_off = b.push("out.bias", cfg.classes, ParamKind::TrainableWeight);
        linears.push(LinearSpec {
            in_dim,
            out_dim: cfg.classes,
            w_off,
            b_off,
        });

        let layout = b.finish();
        let mut params = vec![0.0f32; layout.total()];
        for l in &linears {
            kaiming_uniform(
                rng,
                &mut params[l.w_off..l.w_off + l.in_dim * l.out_dim],
                l.in_dim,
            );
        }
        for bn in bns.iter().flatten() {
            for g in &mut params[bn.gamma_off..bn.gamma_off + bn.dim] {
                *g = 1.0;
            }
            for v in &mut params[bn.var_off..bn.var_off + bn.dim] {
                *v = 1.0;
            }
        }
        Self {
            topo: MlpTopology {
                cfg,
                layout,
                linears,
                bns,
            },
            params,
        }
    }

    /// The shared immutable architecture (see [`MlpTopology`]).
    #[must_use]
    pub fn topology(&self) -> &MlpTopology {
        &self.topo
    }

    /// The model configuration.
    #[must_use]
    pub fn config(&self) -> &MlpConfig {
        &self.topo.cfg
    }

    /// The flat-parameter layout (trainable vs BN-statistic positions).
    #[must_use]
    pub fn layout(&self) -> &ParamLayout {
        &self.topo.layout
    }

    /// Total number of flat parameters `d`.
    #[must_use]
    pub fn num_params(&self) -> usize {
        self.params.len()
    }

    /// The flat parameter vector.
    #[must_use]
    pub fn params(&self) -> &[f32] {
        &self.params
    }

    /// Mutable access to the flat parameter vector.
    pub fn params_mut(&mut self) -> &mut [f32] {
        &mut self.params
    }

    /// Overwrites all parameters.
    ///
    /// # Panics
    /// Panics if `new.len() != num_params()`.
    pub fn set_params(&mut self, new: &[f32]) {
        assert_eq!(new.len(), self.params.len(), "parameter length mismatch");
        self.params.copy_from_slice(new);
    }

    /// Mean loss and flat gradient on one minibatch, in training mode
    /// (BatchNorm uses batch statistics and updates its running
    /// statistics in place, mirroring a PyTorch training step).
    ///
    /// Gradient entries at BN-statistic positions are zero. Allocates a
    /// fresh workspace per call — hot paths should hold a [`TrainScratch`]
    /// and use [`Mlp::loss_and_grad_into`] instead.
    ///
    /// # Panics
    /// Panics if `x.len()` is not a multiple of `input_dim`, the implied
    /// batch size differs from `y.len()`, or a label is out of range.
    pub fn loss_and_grad(&mut self, x: &[f32], y: &[usize]) -> (f64, Vec<f32>) {
        let mut scratch = TrainScratch::new();
        let loss = self
            .topo
            .loss_and_grad_into(&mut self.params, x, y, &mut scratch);
        (loss, std::mem::take(&mut scratch.grad))
    }

    /// Allocation-free variant of [`Mlp::loss_and_grad`]: the gradient is
    /// left in [`TrainScratch::grad`].
    pub fn loss_and_grad_into(
        &mut self,
        x: &[f32],
        y: &[usize],
        scratch: &mut TrainScratch,
    ) -> f64 {
        self.topo
            .loss_and_grad_into(&mut self.params, x, y, scratch)
    }

    /// Like [`Mlp::loss_and_grad`] but *without* the running-statistics
    /// side effect. Used by finite-difference tests and line searches.
    pub fn loss_and_grad_frozen_stats(&mut self, x: &[f32], y: &[usize]) -> (f64, Vec<f32>) {
        let mut scratch = TrainScratch::new();
        let loss = self
            .topo
            .loss_and_grad_frozen_into(&mut self.params, x, y, &mut scratch);
        (loss, std::mem::take(&mut scratch.grad))
    }

    /// Training-mode loss only (batch statistics, no side effects).
    #[must_use]
    pub fn training_loss(&self, x: &[f32], y: &[usize]) -> f64 {
        let mut scratch = TrainScratch::new();
        self.topo
            .training_loss_into(&self.params, x, y, &mut scratch)
    }

    /// Evaluates loss / top-1 / top-5 on a labelled set, in eval mode
    /// (running statistics, no side effects — and no model clone; the
    /// forward pass reads `&self` directly).
    ///
    /// # Panics
    /// Panics on shape mismatches.
    #[must_use]
    pub fn evaluate(&self, x: &[f32], y: &[usize]) -> EvalMetrics {
        let mut scratch = TrainScratch::new();
        self.topo.evaluate_into(&self.params, x, y, &mut scratch)
    }

    /// Allocation-free variant of [`Mlp::evaluate`] over a caller-owned
    /// workspace.
    #[must_use]
    pub fn evaluate_into(&self, x: &[f32], y: &[usize], scratch: &mut TrainScratch) -> EvalMetrics {
        self.topo.evaluate_into(&self.params, x, y, scratch)
    }

    /// Row-wise log-probabilities in eval mode.
    #[must_use]
    pub fn predict_log_probs(&self, x: &[f32]) -> Vec<f32> {
        let mut scratch = TrainScratch::new();
        self.topo
            .predict_log_probs_into(&self.params, x, &mut scratch)
            .to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::Sgd;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_model(batch_norm: bool, seed: u64) -> Mlp {
        let mut rng = StdRng::seed_from_u64(seed);
        Mlp::new(
            MlpConfig {
                input_dim: 5,
                hidden: vec![7, 6],
                classes: 4,
                batch_norm,
            },
            &mut rng,
        )
    }

    fn toy_batch(
        seed: u64,
        batch: usize,
        input_dim: usize,
        classes: usize,
    ) -> (Vec<f32>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<f32> = (0..batch * input_dim)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let y: Vec<usize> = (0..batch).map(|_| rng.gen_range(0..classes)).collect();
        (x, y)
    }

    /// Finite-difference gradient check on every trainable parameter of a
    /// small model — the strongest correctness evidence for the backprop.
    fn gradcheck(batch_norm: bool, tolerance: f64, eps: f32) {
        let mut model = toy_model(batch_norm, 42);
        let (x, y) = toy_batch(7, 6, 5, 4);
        let (_, grad) = model.loss_and_grad_frozen_stats(&x, &y);
        let trainable = model.layout().trainable_mask();
        let mut checked = 0;
        #[allow(clippy::needless_range_loop)] // i indexes params and grad
        for i in 0..model.num_params() {
            if !trainable.get(i) {
                assert_eq!(grad[i], 0.0, "BN statistic {i} must have zero grad");
                continue;
            }
            let orig = model.params()[i];
            model.params_mut()[i] = orig + eps;
            let lp = model.training_loss(&x, &y);
            model.params_mut()[i] = orig - eps;
            let lm = model.training_loss(&x, &y);
            model.params_mut()[i] = orig;
            let numeric = (lp - lm) / (2.0 * f64::from(eps));
            let analytic = f64::from(grad[i]);
            // Floor absorbs f32 forward-pass noise and ReLU-kink
            // crossings, which scale like 1/eps around zero gradients.
            let denom = numeric.abs().max(analytic.abs()).max(1e-6 / f64::from(eps));
            assert!(
                (numeric - analytic).abs() / denom < tolerance,
                "param {i}: numeric {numeric:.6} vs analytic {analytic:.6}"
            );
            checked += 1;
        }
        assert!(checked > 50, "checked only {checked} parameters");
    }

    #[test]
    fn gradcheck_without_bn() {
        gradcheck(false, 0.08, 1e-2);
    }

    #[test]
    fn gradcheck_with_bn() {
        // BatchNorm couples every sample's gradient through the batch
        // statistics, so f32 finite differences are noisier here.
        gradcheck(true, 0.12, 3e-3);
    }

    #[test]
    fn param_count_matches_architecture() {
        let m = toy_model(false, 0);
        // 5·7+7 + 7·6+6 + 6·4+4 = 35+7+42+6+24+4
        assert_eq!(m.num_params(), 118);
        let m = toy_model(true, 0);
        // + BN(7): 7+7+7+7+1 = 29, BN(6): 6+6+6+6+1 = 25
        assert_eq!(m.num_params(), 118 + 29 + 25);
        assert_eq!(m.layout().statistic_count(), 7 + 7 + 1 + 6 + 6 + 1);
    }

    #[test]
    fn training_reduces_loss() {
        let mut model = toy_model(true, 3);
        let (x, y) = toy_batch(8, 32, 5, 4);
        let initial = model.evaluate(&x, &y).loss;
        let mut opt = Sgd::new(model.num_params(), 0.1, 0.9);
        for _ in 0..60 {
            let (_, grad) = model.loss_and_grad(&x, &y);
            opt.step(model.params_mut(), &grad);
        }
        let trained = model.evaluate(&x, &y).loss;
        assert!(
            trained < initial * 0.5,
            "loss {initial:.4} → {trained:.4} did not halve"
        );
    }

    #[test]
    fn logistic_regression_special_case() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut model = Mlp::new(
            MlpConfig {
                input_dim: 3,
                hidden: vec![],
                classes: 2,
                batch_norm: false,
            },
            &mut rng,
        );
        assert_eq!(model.num_params(), 3 * 2 + 2);
        // Linearly separable toy data trains to high accuracy.
        let x: Vec<f32> = (0..200)
            .flat_map(|i| {
                let s = if i % 2 == 0 { 1.0 } else { -1.0 };
                vec![s + 0.1 * (i as f32 % 7.0 - 3.0), s, -s]
            })
            .collect();
        let y: Vec<usize> = (0..200).map(|i| i % 2).collect();
        let mut opt = Sgd::new(model.num_params(), 0.5, 0.0);
        for _ in 0..100 {
            let (_, g) = model.loss_and_grad(&x, &y);
            opt.step(model.params_mut(), &g);
        }
        assert!(model.evaluate(&x, &y).top1 > 0.95);
    }

    #[test]
    fn bn_running_stats_update_in_training_only() {
        let mut model = toy_model(true, 4);
        let (x, y) = toy_batch(5, 16, 5, 4);
        let seg = model.layout().segment("bn0.running_mean").unwrap().clone();
        let count_seg = model
            .layout()
            .segment("bn0.num_batches_tracked")
            .unwrap()
            .clone();
        let before: Vec<f32> = model.params()[seg.start..seg.end].to_vec();
        let _ = model.evaluate(&x, &y); // eval: no change
        assert_eq!(&model.params()[seg.start..seg.end], &before[..]);
        let _ = model.loss_and_grad_frozen_stats(&x, &y); // frozen: no change
        assert_eq!(&model.params()[seg.start..seg.end], &before[..]);
        let _ = model.loss_and_grad(&x, &y); // training: updates
        assert_ne!(&model.params()[seg.start..seg.end], &before[..]);
        assert_eq!(model.params()[count_seg.start], 1.0);
    }

    #[test]
    fn bn_normalises_batch_activations() {
        // After BN (training mode), each feature of x_hat has ~zero mean
        // and ~unit variance; we test indirectly: a model whose input is
        // wildly scaled still produces finite loss and gradients.
        let mut model = toy_model(true, 6);
        let (mut x, y) = toy_batch(11, 16, 5, 4);
        for v in &mut x {
            *v *= 1e3;
        }
        let (loss, grad) = model.loss_and_grad(&x, &y);
        assert!(loss.is_finite());
        assert!(grad.iter().all(|g| g.is_finite()));
    }

    #[test]
    fn evaluate_is_side_effect_free_and_deterministic() {
        let model = toy_model(true, 12);
        let (x, y) = toy_batch(13, 24, 5, 4);
        let a = model.evaluate(&x, &y);
        let b = model.evaluate(&x, &y);
        assert_eq!(a, b);
    }

    #[test]
    fn set_params_roundtrip() {
        let model = toy_model(false, 1);
        let snapshot = model.params().to_vec();
        let mut other = toy_model(false, 2);
        assert_ne!(other.params(), &snapshot[..]);
        other.set_params(&snapshot);
        assert_eq!(other.params(), &snapshot[..]);
    }

    #[test]
    fn batch_of_one_with_bn_is_finite() {
        let mut model = toy_model(true, 5);
        let (x, y) = toy_batch(14, 1, 5, 4);
        let (loss, grad) = model.loss_and_grad(&x, &y);
        assert!(loss.is_finite());
        assert!(grad.iter().all(|g| g.is_finite()));
    }

    #[test]
    #[should_panic(expected = "batch/label count mismatch")]
    fn shape_mismatch_panics() {
        let mut model = toy_model(false, 1);
        let _ = model.loss_and_grad(&[0.0; 10], &[0usize; 3]);
    }

    #[test]
    fn eval_metrics_have_sane_ranges() {
        let model = toy_model(true, 15);
        let (x, y) = toy_batch(16, 50, 5, 4);
        let m = model.evaluate(&x, &y);
        assert!(m.loss > 0.0);
        assert!((0.0..=1.0).contains(&m.top1));
        assert!((0.0..=1.0).contains(&m.top5));
        assert!(m.top5 >= m.top1);
        // 4 classes → top5 is always 1.
        assert_eq!(m.top5, 1.0);
    }

    /// A reused scratch must produce bit-identical training trajectories
    /// to per-call fresh buffers — the core guarantee of the pooled path.
    #[test]
    fn reused_scratch_matches_fresh_buffers_bitwise() {
        for batch_norm in [false, true] {
            let mut fresh = toy_model(batch_norm, 21);
            let mut pooled = fresh.clone();
            let mut scratch = TrainScratch::new();
            let mut opt = Sgd::new(fresh.num_params(), 0.07, 0.9);
            scratch.reset_velocity();
            for step in 0..5 {
                let (x, y) = toy_batch(100 + step, 9, 5, 4);
                let (loss_a, grad_a) = fresh.loss_and_grad(&x, &y);
                opt.step(fresh.params_mut(), &grad_a);
                let loss_b = pooled.loss_and_grad_into(&x, &y, &mut scratch);
                assert_eq!(loss_a.to_bits(), loss_b.to_bits(), "loss step {step}");
                assert!(grad_a
                    .iter()
                    .zip(scratch.grad())
                    .all(|(a, b)| a.to_bits() == b.to_bits()));
                scratch.sgd_step(pooled.params_mut(), 0.07, 0.9);
                assert!(
                    fresh
                        .params()
                        .iter()
                        .zip(pooled.params())
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "params diverged at step {step} (bn={batch_norm})"
                );
            }
        }
    }

    /// Steady-state training steps must not reallocate any scratch buffer.
    #[test]
    fn training_steps_are_allocation_free_in_steady_state() {
        let mut model = toy_model(true, 30);
        let mut scratch = TrainScratch::new();
        let (x, y) = toy_batch(31, 8, 5, 4);
        let _ = model.loss_and_grad_into(&x, &y, &mut scratch);
        scratch.sgd_step(model.params_mut(), 0.05, 0.9);
        let grad_ptr = scratch.grad.as_ptr();
        let logits_ptr = scratch.logits.as_ptr();
        let vel_ptr = scratch.velocity.as_ptr();
        let dbuf_ptrs: Vec<*const f32> = scratch.d_bufs.iter().map(|b| b.as_ptr()).collect();
        for _ in 0..4 {
            let _ = model.loss_and_grad_into(&x, &y, &mut scratch);
            scratch.sgd_step(model.params_mut(), 0.05, 0.9);
        }
        assert_eq!(scratch.grad.as_ptr(), grad_ptr);
        assert_eq!(scratch.logits.as_ptr(), logits_ptr);
        assert_eq!(scratch.velocity.as_ptr(), vel_ptr);
        let after: Vec<*const f32> = scratch.d_bufs.iter().map(|b| b.as_ptr()).collect();
        assert_eq!(after, dbuf_ptrs);
    }

    #[test]
    fn evaluate_into_matches_evaluate() {
        let model = toy_model(true, 33);
        let (x, y) = toy_batch(34, 20, 5, 4);
        let mut scratch = TrainScratch::new();
        let a = model.evaluate(&x, &y);
        let b = model.evaluate_into(&x, &y, &mut scratch);
        assert_eq!(a, b);
        // Reuse across differently-sized eval sets stays consistent.
        let (x2, y2) = toy_batch(35, 7, 5, 4);
        let c = model.evaluate_into(&x2, &y2, &mut scratch);
        assert_eq!(c, model.evaluate(&x2, &y2));
    }

    #[test]
    fn predict_log_probs_matches_topology_kernel() {
        let model = toy_model(true, 36);
        let (x, _) = toy_batch(37, 6, 5, 4);
        let owned = model.predict_log_probs(&x);
        let mut scratch = TrainScratch::new();
        let borrowed = model
            .topology()
            .predict_log_probs_into(model.params(), &x, &mut scratch);
        assert_eq!(owned, borrowed);
    }

    #[test]
    fn topology_is_shared_unchanged_across_clones() {
        let model = toy_model(true, 38);
        let clone = model.clone();
        assert_eq!(model.topology(), clone.topology());
        assert_eq!(model.topology().num_params(), model.num_params());
    }
}
