//! Multi-layer perceptron with optional BatchNorm over flat parameters.

use crate::init::kaiming_uniform;
use crate::layout::{ParamKind, ParamLayout};
use crate::loss::{accuracy, log_softmax_rows, nll_and_grad, top5_accuracy};
use rand::Rng;

/// Configuration of an [`Mlp`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MlpConfig {
    /// Input feature dimension.
    pub input_dim: usize,
    /// Hidden layer widths (empty = multinomial logistic regression).
    pub hidden: Vec<usize>,
    /// Number of output classes.
    pub classes: usize,
    /// Insert a BatchNorm after each hidden linear layer.
    pub batch_norm: bool,
}

/// Offsets of one linear layer inside the flat parameter vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LinearSpec {
    in_dim: usize,
    out_dim: usize,
    /// Weight matrix `[out_dim × in_dim]`, row-major.
    w_off: usize,
    /// Bias vector `[out_dim]`.
    b_off: usize,
}

/// Offsets and hyper-parameters of one BatchNorm layer.
///
/// Five parameter groups, mirroring `torch.nn.BatchNorm1d` (paper
/// Appendix D): trainable `weight` (gamma) and `bias` (beta), plus the
/// non-trainable statistics `running_mean`, `running_var`, and
/// `num_batches_tracked` (stored as a single f32 count).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchNorm {
    dim: usize,
    gamma_off: usize,
    beta_off: usize,
    mean_off: usize,
    var_off: usize,
    count_off: usize,
    /// Running-statistics update rate (PyTorch default 0.1).
    pub momentum: f32,
    /// Variance epsilon (PyTorch default 1e-5).
    pub eps: f32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Batch statistics; optionally update running statistics in place.
    Train { update_stats: bool },
    /// Running statistics; no side effects.
    Eval,
}

/// Evaluation metrics produced by [`Mlp::evaluate`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EvalMetrics {
    /// Mean cross-entropy loss.
    pub loss: f64,
    /// Top-1 accuracy in `[0, 1]`.
    pub top1: f64,
    /// Top-5 accuracy in `[0, 1]`.
    pub top5: f64,
}

/// A multi-layer perceptron over one flat `Vec<f32>` parameter vector.
///
/// Architecture: `[Linear → (BatchNorm) → ReLU] × hidden.len() → Linear`,
/// trained with softmax cross-entropy. All parameters — including the
/// BatchNorm running statistics — live in a single flat vector exposed via
/// [`Mlp::params`], so federated-learning code can mask, sparsify, diff,
/// and aggregate positions without knowing the architecture.
///
/// # Example
///
/// ```
/// use gluefl_ml::{Mlp, MlpConfig};
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let model = Mlp::new(
///     MlpConfig { input_dim: 4, hidden: vec![8], classes: 3, batch_norm: false },
///     &mut rng,
/// );
/// // 4·8 + 8 weights+bias, 8·3 + 3 output layer.
/// assert_eq!(model.num_params(), 4 * 8 + 8 + 8 * 3 + 3);
/// ```
#[derive(Debug, Clone)]
pub struct Mlp {
    cfg: MlpConfig,
    layout: ParamLayout,
    params: Vec<f32>,
    linears: Vec<LinearSpec>,
    bns: Vec<Option<BatchNorm>>,
}

impl Mlp {
    /// Builds and initialises a model (Kaiming-uniform weights, zero
    /// biases, BN gamma 1 / beta 0 / mean 0 / var 1 / count 0).
    ///
    /// # Panics
    /// Panics if `input_dim == 0` or `classes == 0`.
    #[must_use]
    pub fn new<R: Rng>(cfg: MlpConfig, rng: &mut R) -> Self {
        assert!(cfg.input_dim > 0, "input_dim must be positive");
        assert!(cfg.classes > 0, "classes must be positive");
        let mut b = ParamLayout::builder();
        let mut linears = Vec::new();
        let mut bns = Vec::new();
        let mut in_dim = cfg.input_dim;
        for (i, &h) in cfg.hidden.iter().enumerate() {
            assert!(h > 0, "hidden layer {i} must be positive");
            let w_off = b.push(
                &format!("l{i}.weight"),
                in_dim * h,
                ParamKind::TrainableWeight,
            );
            let b_off = b.push(&format!("l{i}.bias"), h, ParamKind::TrainableWeight);
            linears.push(LinearSpec {
                in_dim,
                out_dim: h,
                w_off,
                b_off,
            });
            if cfg.batch_norm {
                let gamma_off = b.push(&format!("bn{i}.weight"), h, ParamKind::TrainableWeight);
                let beta_off = b.push(&format!("bn{i}.bias"), h, ParamKind::TrainableWeight);
                let mean_off = b.push(&format!("bn{i}.running_mean"), h, ParamKind::BnStatistic);
                let var_off = b.push(&format!("bn{i}.running_var"), h, ParamKind::BnStatistic);
                let count_off = b.push(
                    &format!("bn{i}.num_batches_tracked"),
                    1,
                    ParamKind::BnStatistic,
                );
                bns.push(Some(BatchNorm {
                    dim: h,
                    gamma_off,
                    beta_off,
                    mean_off,
                    var_off,
                    count_off,
                    momentum: 0.1,
                    eps: 1e-5,
                }));
            } else {
                bns.push(None);
            }
            in_dim = h;
        }
        let w_off = b.push(
            "out.weight",
            in_dim * cfg.classes,
            ParamKind::TrainableWeight,
        );
        let b_off = b.push("out.bias", cfg.classes, ParamKind::TrainableWeight);
        linears.push(LinearSpec {
            in_dim,
            out_dim: cfg.classes,
            w_off,
            b_off,
        });

        let layout = b.finish();
        let mut params = vec![0.0f32; layout.total()];
        for l in &linears {
            kaiming_uniform(
                rng,
                &mut params[l.w_off..l.w_off + l.in_dim * l.out_dim],
                l.in_dim,
            );
        }
        for bn in bns.iter().flatten() {
            for g in &mut params[bn.gamma_off..bn.gamma_off + bn.dim] {
                *g = 1.0;
            }
            for v in &mut params[bn.var_off..bn.var_off + bn.dim] {
                *v = 1.0;
            }
        }
        Self {
            cfg,
            layout,
            params,
            linears,
            bns,
        }
    }

    /// The model configuration.
    #[must_use]
    pub fn config(&self) -> &MlpConfig {
        &self.cfg
    }

    /// The flat-parameter layout (trainable vs BN-statistic positions).
    #[must_use]
    pub fn layout(&self) -> &ParamLayout {
        &self.layout
    }

    /// Total number of flat parameters `d`.
    #[must_use]
    pub fn num_params(&self) -> usize {
        self.params.len()
    }

    /// The flat parameter vector.
    #[must_use]
    pub fn params(&self) -> &[f32] {
        &self.params
    }

    /// Mutable access to the flat parameter vector.
    pub fn params_mut(&mut self) -> &mut [f32] {
        &mut self.params
    }

    /// Overwrites all parameters.
    ///
    /// # Panics
    /// Panics if `new.len() != num_params()`.
    pub fn set_params(&mut self, new: &[f32]) {
        assert_eq!(new.len(), self.params.len(), "parameter length mismatch");
        self.params.copy_from_slice(new);
    }

    /// Mean loss and flat gradient on one minibatch, in training mode
    /// (BatchNorm uses batch statistics and updates its running
    /// statistics in place, mirroring a PyTorch training step).
    ///
    /// Gradient entries at BN-statistic positions are zero.
    ///
    /// # Panics
    /// Panics if `x.len()` is not a multiple of `input_dim`, the implied
    /// batch size differs from `y.len()`, or a label is out of range.
    pub fn loss_and_grad(&mut self, x: &[f32], y: &[usize]) -> (f64, Vec<f32>) {
        self.loss_and_grad_mode(x, y, Mode::Train { update_stats: true })
    }

    /// Like [`Mlp::loss_and_grad`] but *without* the running-statistics
    /// side effect. Used by finite-difference tests and line searches.
    pub fn loss_and_grad_frozen_stats(&mut self, x: &[f32], y: &[usize]) -> (f64, Vec<f32>) {
        self.loss_and_grad_mode(
            x,
            y,
            Mode::Train {
                update_stats: false,
            },
        )
    }

    /// Training-mode loss only (batch statistics, no side effects).
    #[must_use]
    pub fn training_loss(&mut self, x: &[f32], y: &[usize]) -> f64 {
        // Forward pass without gradient work.
        let batch = self.check_batch(x, y);
        let (mut logits, _caches) = self.forward(
            x,
            batch,
            Mode::Train {
                update_stats: false,
            },
        );
        log_softmax_rows(&mut logits, batch, self.cfg.classes);
        let mut scratch = vec![0.0f32; logits.len()];
        nll_and_grad(&logits, y, self.cfg.classes, &mut scratch)
    }

    /// Evaluates loss / top-1 / top-5 on a labelled set, in eval mode
    /// (running statistics, no side effects).
    ///
    /// # Panics
    /// Panics on shape mismatches.
    #[must_use]
    pub fn evaluate(&self, x: &[f32], y: &[usize]) -> EvalMetrics {
        let batch = self.check_batch(x, y);
        if batch == 0 {
            return EvalMetrics::default();
        }
        let mut work = self.clone();
        let (mut logits, _caches) = work.forward(x, batch, Mode::Eval);
        log_softmax_rows(&mut logits, batch, self.cfg.classes);
        let mut scratch = vec![0.0f32; logits.len()];
        let loss = nll_and_grad(&logits, y, self.cfg.classes, &mut scratch);
        EvalMetrics {
            loss,
            top1: accuracy(&logits, y, self.cfg.classes),
            top5: top5_accuracy(&logits, y, self.cfg.classes),
        }
    }

    /// Row-wise log-probabilities in eval mode.
    #[must_use]
    pub fn predict_log_probs(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len() % self.cfg.input_dim, 0, "input shape mismatch");
        let batch = x.len() / self.cfg.input_dim;
        let mut work = self.clone();
        let (mut logits, _caches) = work.forward(x, batch, Mode::Eval);
        log_softmax_rows(&mut logits, batch, self.cfg.classes);
        logits
    }

    fn check_batch(&self, x: &[f32], y: &[usize]) -> usize {
        assert_eq!(x.len() % self.cfg.input_dim, 0, "input shape mismatch");
        let batch = x.len() / self.cfg.input_dim;
        assert_eq!(batch, y.len(), "batch/label count mismatch");
        batch
    }

    fn loss_and_grad_mode(&mut self, x: &[f32], y: &[usize], mode: Mode) -> (f64, Vec<f32>) {
        let batch = self.check_batch(x, y);
        let classes = self.cfg.classes;
        let (mut logits, caches) = self.forward(x, batch, mode);
        log_softmax_rows(&mut logits, batch, classes);
        let mut d_logits = vec![0.0f32; logits.len()];
        let loss = nll_and_grad(&logits, y, classes, &mut d_logits);
        let grad = self.backward(x, batch, &caches, d_logits);
        (loss, grad)
    }

    /// Runs the forward pass, returning raw logits and per-layer caches.
    fn forward(&mut self, x: &[f32], batch: usize, mode: Mode) -> (Vec<f32>, Vec<LayerCache>) {
        let n_hidden = self.cfg.hidden.len();
        let mut caches = Vec::with_capacity(n_hidden);
        let mut activ: Vec<f32> = x.to_vec();
        for i in 0..n_hidden {
            let lin = self.linears[i];
            let z = self.linear_forward(&activ, batch, lin);
            let (post_bn, bn_cache) = match self.bns[i] {
                Some(bn) => {
                    let (out, cache) = self.bn_forward(&z, batch, bn, mode);
                    (out, Some(cache))
                }
                None => (z.clone(), None),
            };
            // ReLU
            let mut relu_mask = vec![false; post_bn.len()];
            let mut a = post_bn;
            for (v, m) in a.iter_mut().zip(relu_mask.iter_mut()) {
                if *v > 0.0 {
                    *m = true;
                } else {
                    *v = 0.0;
                }
            }
            caches.push(LayerCache {
                input: activ,
                pre_bn: z,
                bn: bn_cache,
                relu_mask,
            });
            activ = a;
        }
        let out_lin = *self.linears.last().expect("output layer exists");
        let logits = self.linear_forward(&activ, batch, out_lin);
        caches.push(LayerCache {
            input: activ,
            pre_bn: Vec::new(),
            bn: None,
            relu_mask: Vec::new(),
        });
        (logits, caches)
    }

    fn backward(
        &self,
        _x: &[f32],
        batch: usize,
        caches: &[LayerCache],
        d_logits: Vec<f32>,
    ) -> Vec<f32> {
        let mut grad = vec![0.0f32; self.params.len()];
        let n_hidden = self.cfg.hidden.len();
        // Output layer.
        let out_lin = *self.linears.last().expect("output layer exists");
        let out_cache = caches.last().expect("output cache exists");
        let mut d_activ =
            self.linear_backward(&out_cache.input, batch, out_lin, &d_logits, &mut grad);
        // Hidden layers in reverse.
        for i in (0..n_hidden).rev() {
            let cache = &caches[i];
            // ReLU backward.
            for (d, &m) in d_activ.iter_mut().zip(&cache.relu_mask) {
                if !m {
                    *d = 0.0;
                }
            }
            // BatchNorm backward.
            let d_pre_bn = match (&self.bns[i], &cache.bn) {
                (Some(bn), Some(bn_cache)) => {
                    self.bn_backward(batch, *bn, bn_cache, &d_activ, &mut grad)
                }
                _ => d_activ,
            };
            // Linear backward.
            let lin = self.linears[i];
            d_activ = self.linear_backward(&cache.input, batch, lin, &d_pre_bn, &mut grad);
        }
        grad
    }

    fn linear_forward(&self, input: &[f32], batch: usize, lin: LinearSpec) -> Vec<f32> {
        let w = &self.params[lin.w_off..lin.w_off + lin.in_dim * lin.out_dim];
        let b = &self.params[lin.b_off..lin.b_off + lin.out_dim];
        let mut out = vec![0.0f32; batch * lin.out_dim];
        for r in 0..batch {
            let xin = &input[r * lin.in_dim..(r + 1) * lin.in_dim];
            let row = &mut out[r * lin.out_dim..(r + 1) * lin.out_dim];
            for (o, dst) in row.iter_mut().enumerate() {
                let wrow = &w[o * lin.in_dim..(o + 1) * lin.in_dim];
                let mut acc = b[o];
                for (xi, wi) in xin.iter().zip(wrow) {
                    acc += xi * wi;
                }
                *dst = acc;
            }
        }
        out
    }

    /// Accumulates dW, db into `grad` and returns d(input).
    fn linear_backward(
        &self,
        input: &[f32],
        batch: usize,
        lin: LinearSpec,
        d_out: &[f32],
        grad: &mut [f32],
    ) -> Vec<f32> {
        let w = &self.params[lin.w_off..lin.w_off + lin.in_dim * lin.out_dim];
        let mut d_in = vec![0.0f32; batch * lin.in_dim];
        {
            let (gw, gb) = {
                // Split disjoint gradient slices without unsafe.
                debug_assert!(
                    lin.b_off >= lin.w_off + lin.in_dim * lin.out_dim || lin.b_off < lin.w_off
                );
                (lin.w_off, lin.b_off)
            };
            for r in 0..batch {
                let xin = &input[r * lin.in_dim..(r + 1) * lin.in_dim];
                let drow = &d_out[r * lin.out_dim..(r + 1) * lin.out_dim];
                let din_row = &mut d_in[r * lin.in_dim..(r + 1) * lin.in_dim];
                for (o, &d) in drow.iter().enumerate() {
                    grad[gb + o] += d;
                    let wrow = &w[o * lin.in_dim..(o + 1) * lin.in_dim];
                    let gw_row = gw + o * lin.in_dim;
                    for j in 0..lin.in_dim {
                        grad[gw_row + j] += d * xin[j];
                        din_row[j] += d * wrow[j];
                    }
                }
            }
        }
        d_in
    }

    fn bn_forward(
        &mut self,
        z: &[f32],
        batch: usize,
        bn: BatchNorm,
        mode: Mode,
    ) -> (Vec<f32>, BnCache) {
        let dim = bn.dim;
        let mut mu = vec![0.0f32; dim];
        let mut var = vec![0.0f32; dim];
        match mode {
            Mode::Train { update_stats } => {
                let inv_b = 1.0 / batch as f32;
                for r in 0..batch {
                    for (o, m) in mu.iter_mut().enumerate() {
                        *m += z[r * dim + o] * inv_b;
                    }
                }
                for r in 0..batch {
                    for (o, v) in var.iter_mut().enumerate() {
                        let d = z[r * dim + o] - mu[o];
                        *v += d * d * inv_b;
                    }
                }
                if update_stats {
                    // PyTorch: running ← (1−m)·running + m·batch_stat, with
                    // the *unbiased* variance in the running update.
                    let unbias = if batch > 1 {
                        batch as f32 / (batch as f32 - 1.0)
                    } else {
                        1.0
                    };
                    let m = bn.momentum;
                    for o in 0..dim {
                        let rm = &mut self.params[bn.mean_off + o];
                        *rm = (1.0 - m) * *rm + m * mu[o];
                        let rv = &mut self.params[bn.var_off + o];
                        *rv = (1.0 - m) * *rv + m * var[o] * unbias;
                    }
                    self.params[bn.count_off] += 1.0;
                }
            }
            Mode::Eval => {
                mu.copy_from_slice(&self.params[bn.mean_off..bn.mean_off + dim]);
                var.copy_from_slice(&self.params[bn.var_off..bn.var_off + dim]);
            }
        }
        let inv_std: Vec<f32> = var.iter().map(|v| 1.0 / (v + bn.eps).sqrt()).collect();
        let gamma = &self.params[bn.gamma_off..bn.gamma_off + dim];
        let beta = &self.params[bn.beta_off..bn.beta_off + dim];
        let mut x_hat = vec![0.0f32; batch * dim];
        let mut out = vec![0.0f32; batch * dim];
        for r in 0..batch {
            for o in 0..dim {
                let xh = (z[r * dim + o] - mu[o]) * inv_std[o];
                x_hat[r * dim + o] = xh;
                out[r * dim + o] = gamma[o] * xh + beta[o];
            }
        }
        (out, BnCache { x_hat, inv_std })
    }

    /// BatchNorm backward (training mode, batch statistics). Accumulates
    /// dγ, dβ into `grad` and returns d(pre-BN input).
    fn bn_backward(
        &self,
        batch: usize,
        bn: BatchNorm,
        cache: &BnCache,
        d_out: &[f32],
        grad: &mut [f32],
    ) -> Vec<f32> {
        let dim = bn.dim;
        let gamma = &self.params[bn.gamma_off..bn.gamma_off + dim];
        let b = batch as f32;
        // Per-feature reductions.
        let mut sum_dy = vec![0.0f32; dim];
        let mut sum_dy_xhat = vec![0.0f32; dim];
        for r in 0..batch {
            for o in 0..dim {
                let dy = d_out[r * dim + o];
                sum_dy[o] += dy;
                sum_dy_xhat[o] += dy * cache.x_hat[r * dim + o];
            }
        }
        for o in 0..dim {
            grad[bn.gamma_off + o] += sum_dy_xhat[o];
            grad[bn.beta_off + o] += sum_dy[o];
        }
        let mut d_in = vec![0.0f32; batch * dim];
        for r in 0..batch {
            for o in 0..dim {
                let dy = d_out[r * dim + o];
                let xh = cache.x_hat[r * dim + o];
                d_in[r * dim + o] =
                    gamma[o] * cache.inv_std[o] / b * (b * dy - sum_dy[o] - xh * sum_dy_xhat[o]);
            }
        }
        d_in
    }
}

/// Cached activations for one layer's backward pass.
#[derive(Debug, Clone)]
struct LayerCache {
    /// Input activations to the linear layer.
    input: Vec<f32>,
    /// Pre-BatchNorm linear output (unused when no BN).
    #[allow(dead_code)]
    pre_bn: Vec<f32>,
    bn: Option<BnCache>,
    relu_mask: Vec<bool>,
}

#[derive(Debug, Clone)]
struct BnCache {
    x_hat: Vec<f32>,
    inv_std: Vec<f32>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::Sgd;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_model(batch_norm: bool, seed: u64) -> Mlp {
        let mut rng = StdRng::seed_from_u64(seed);
        Mlp::new(
            MlpConfig {
                input_dim: 5,
                hidden: vec![7, 6],
                classes: 4,
                batch_norm,
            },
            &mut rng,
        )
    }

    fn toy_batch(
        seed: u64,
        batch: usize,
        input_dim: usize,
        classes: usize,
    ) -> (Vec<f32>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<f32> = (0..batch * input_dim)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let y: Vec<usize> = (0..batch).map(|_| rng.gen_range(0..classes)).collect();
        (x, y)
    }

    /// Finite-difference gradient check on every trainable parameter of a
    /// small model — the strongest correctness evidence for the backprop.
    fn gradcheck(batch_norm: bool, tolerance: f64, eps: f32) {
        let mut model = toy_model(batch_norm, 42);
        let (x, y) = toy_batch(7, 6, 5, 4);
        let (_, grad) = model.loss_and_grad_frozen_stats(&x, &y);
        let trainable = model.layout().trainable_mask();
        let mut checked = 0;
        #[allow(clippy::needless_range_loop)] // i indexes params and grad
        for i in 0..model.num_params() {
            if !trainable.get(i) {
                assert_eq!(grad[i], 0.0, "BN statistic {i} must have zero grad");
                continue;
            }
            let orig = model.params()[i];
            model.params_mut()[i] = orig + eps;
            let lp = model.training_loss(&x, &y);
            model.params_mut()[i] = orig - eps;
            let lm = model.training_loss(&x, &y);
            model.params_mut()[i] = orig;
            let numeric = (lp - lm) / (2.0 * f64::from(eps));
            let analytic = f64::from(grad[i]);
            // Floor absorbs f32 forward-pass noise and ReLU-kink
            // crossings, which scale like 1/eps around zero gradients.
            let denom = numeric.abs().max(analytic.abs()).max(1e-6 / f64::from(eps));
            assert!(
                (numeric - analytic).abs() / denom < tolerance,
                "param {i}: numeric {numeric:.6} vs analytic {analytic:.6}"
            );
            checked += 1;
        }
        assert!(checked > 50, "checked only {checked} parameters");
    }

    #[test]
    fn gradcheck_without_bn() {
        gradcheck(false, 0.08, 1e-2);
    }

    #[test]
    fn gradcheck_with_bn() {
        // BatchNorm couples every sample's gradient through the batch
        // statistics, so f32 finite differences are noisier here.
        gradcheck(true, 0.12, 3e-3);
    }

    #[test]
    fn param_count_matches_architecture() {
        let m = toy_model(false, 0);
        // 5·7+7 + 7·6+6 + 6·4+4 = 35+7+42+6+24+4
        assert_eq!(m.num_params(), 118);
        let m = toy_model(true, 0);
        // + BN(7): 7+7+7+7+1 = 29, BN(6): 6+6+6+6+1 = 25
        assert_eq!(m.num_params(), 118 + 29 + 25);
        assert_eq!(m.layout().statistic_count(), 7 + 7 + 1 + 6 + 6 + 1);
    }

    #[test]
    fn training_reduces_loss() {
        let mut model = toy_model(true, 3);
        let (x, y) = toy_batch(8, 32, 5, 4);
        let initial = model.evaluate(&x, &y).loss;
        let mut opt = Sgd::new(model.num_params(), 0.1, 0.9);
        for _ in 0..60 {
            let (_, grad) = model.loss_and_grad(&x, &y);
            opt.step(model.params_mut(), &grad);
        }
        let trained = model.evaluate(&x, &y).loss;
        assert!(
            trained < initial * 0.5,
            "loss {initial:.4} → {trained:.4} did not halve"
        );
    }

    #[test]
    fn logistic_regression_special_case() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut model = Mlp::new(
            MlpConfig {
                input_dim: 3,
                hidden: vec![],
                classes: 2,
                batch_norm: false,
            },
            &mut rng,
        );
        assert_eq!(model.num_params(), 3 * 2 + 2);
        // Linearly separable toy data trains to high accuracy.
        let x: Vec<f32> = (0..200)
            .flat_map(|i| {
                let s = if i % 2 == 0 { 1.0 } else { -1.0 };
                vec![s + 0.1 * (i as f32 % 7.0 - 3.0), s, -s]
            })
            .collect();
        let y: Vec<usize> = (0..200).map(|i| i % 2).collect();
        let mut opt = Sgd::new(model.num_params(), 0.5, 0.0);
        for _ in 0..100 {
            let (_, g) = model.loss_and_grad(&x, &y);
            opt.step(model.params_mut(), &g);
        }
        assert!(model.evaluate(&x, &y).top1 > 0.95);
    }

    #[test]
    fn bn_running_stats_update_in_training_only() {
        let mut model = toy_model(true, 4);
        let (x, y) = toy_batch(5, 16, 5, 4);
        let seg = model.layout().segment("bn0.running_mean").unwrap().clone();
        let count_seg = model
            .layout()
            .segment("bn0.num_batches_tracked")
            .unwrap()
            .clone();
        let before: Vec<f32> = model.params()[seg.start..seg.end].to_vec();
        let _ = model.evaluate(&x, &y); // eval: no change
        assert_eq!(&model.params()[seg.start..seg.end], &before[..]);
        let _ = model.loss_and_grad_frozen_stats(&x, &y); // frozen: no change
        assert_eq!(&model.params()[seg.start..seg.end], &before[..]);
        let _ = model.loss_and_grad(&x, &y); // training: updates
        assert_ne!(&model.params()[seg.start..seg.end], &before[..]);
        assert_eq!(model.params()[count_seg.start], 1.0);
    }

    #[test]
    fn bn_normalises_batch_activations() {
        // After BN (training mode), each feature of x_hat has ~zero mean
        // and ~unit variance; we test indirectly: a model whose input is
        // wildly scaled still produces finite loss and gradients.
        let mut model = toy_model(true, 6);
        let (mut x, y) = toy_batch(11, 16, 5, 4);
        for v in &mut x {
            *v *= 1e3;
        }
        let (loss, grad) = model.loss_and_grad(&x, &y);
        assert!(loss.is_finite());
        assert!(grad.iter().all(|g| g.is_finite()));
    }

    #[test]
    fn evaluate_is_side_effect_free_and_deterministic() {
        let model = toy_model(true, 12);
        let (x, y) = toy_batch(13, 24, 5, 4);
        let a = model.evaluate(&x, &y);
        let b = model.evaluate(&x, &y);
        assert_eq!(a, b);
    }

    #[test]
    fn set_params_roundtrip() {
        let model = toy_model(false, 1);
        let snapshot = model.params().to_vec();
        let mut other = toy_model(false, 2);
        assert_ne!(other.params(), &snapshot[..]);
        other.set_params(&snapshot);
        assert_eq!(other.params(), &snapshot[..]);
    }

    #[test]
    fn batch_of_one_with_bn_is_finite() {
        let mut model = toy_model(true, 5);
        let (x, y) = toy_batch(14, 1, 5, 4);
        let (loss, grad) = model.loss_and_grad(&x, &y);
        assert!(loss.is_finite());
        assert!(grad.iter().all(|g| g.is_finite()));
    }

    #[test]
    #[should_panic(expected = "batch/label count mismatch")]
    fn shape_mismatch_panics() {
        let mut model = toy_model(false, 1);
        let _ = model.loss_and_grad(&[0.0; 10], &[0usize; 3]);
    }

    #[test]
    fn eval_metrics_have_sane_ranges() {
        let model = toy_model(true, 15);
        let (x, y) = toy_batch(16, 50, 5, 4);
        let m = model.evaluate(&x, &y);
        assert!(m.loss > 0.0);
        assert!((0.0..=1.0).contains(&m.top1));
        assert!((0.0..=1.0).contains(&m.top5));
        assert!(m.top5 >= m.top1);
        // 4 classes → top5 is always 1.
        assert_eq!(m.top5, 1.0);
    }
}
