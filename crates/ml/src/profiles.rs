//! Named model profiles standing in for the paper's architectures.

use crate::mlp::{Mlp, MlpConfig};
use rand::Rng;

/// The three model architectures of the paper's evaluation (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetModel {
    /// ShuffleNet V2 (used on FEMNIST and OpenImage).
    ShuffleNet,
    /// MobileNet V2 (used on FEMNIST and OpenImage).
    MobileNet,
    /// ResNet-34 (used on Google Speech).
    ResNet34,
}

impl DatasetModel {
    /// The profile standing in for this architecture.
    #[must_use]
    pub fn profile(self) -> ModelProfile {
        match self {
            DatasetModel::ShuffleNet => ModelProfile::shufflenet_like(),
            DatasetModel::MobileNet => ModelProfile::mobilenet_like(),
            DatasetModel::ResNet34 => ModelProfile::resnet34_like(),
        }
    }

    /// Short name used in tables ("shufflenet", "mobilenet", "resnet34").
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DatasetModel::ShuffleNet => "shufflenet",
            DatasetModel::MobileNet => "mobilenet",
            DatasetModel::ResNet34 => "resnet34",
        }
    }
}

impl std::str::FromStr for DatasetModel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "shufflenet" => Ok(DatasetModel::ShuffleNet),
            "mobilenet" => Ok(DatasetModel::MobileNet),
            "resnet34" => Ok(DatasetModel::ResNet34),
            other => Err(format!(
                "unknown model '{other}' (expected shufflenet|mobilenet|resnet34)"
            )),
        }
    }
}

/// A scaled-down stand-in for one of the paper's architectures.
///
/// The substitution rationale (see DESIGN.md §2): sparsification and mask
/// dynamics are dimension-generic, so we train a smaller MLP whose
/// parameter vector plays the role of the full network, and remember the
/// original's `reference_params` so bandwidth can optionally be reported
/// at paper scale via [`ModelProfile::paper_scale_factor`].
///
/// # Example
///
/// ```
/// use gluefl_ml::ModelProfile;
/// use rand::SeedableRng;
/// let profile = ModelProfile::shufflenet_like();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let model = profile.build(64, 62, &mut rng);
/// assert!(model.num_params() > 10_000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelProfile {
    /// Profile name for reports.
    pub name: &'static str,
    /// Hidden layer widths of the stand-in MLP.
    pub hidden: Vec<usize>,
    /// Whether the stand-in uses BatchNorm (all three real nets do).
    pub batch_norm: bool,
    /// Parameter count of the real architecture (for paper-scale bytes).
    pub reference_params: u64,
}

impl ModelProfile {
    /// Stand-in for ShuffleNet V2 (§2.2 cites ≈5M parameters).
    #[must_use]
    pub fn shufflenet_like() -> Self {
        Self {
            name: "shufflenet-like",
            hidden: vec![192, 96],
            batch_norm: true,
            reference_params: 5_000_000,
        }
    }

    /// Stand-in for MobileNet V2 (≈3.5M parameters).
    #[must_use]
    pub fn mobilenet_like() -> Self {
        Self {
            name: "mobilenet-like",
            hidden: vec![160, 80],
            batch_norm: true,
            reference_params: 3_500_000,
        }
    }

    /// Stand-in for ResNet-34 (≈21.8M parameters).
    #[must_use]
    pub fn resnet34_like() -> Self {
        Self {
            name: "resnet34-like",
            hidden: vec![256, 128, 64],
            batch_norm: true,
            reference_params: 21_800_000,
        }
    }

    /// Builds the stand-in model for a task with `input_dim` features and
    /// `classes` classes.
    #[must_use]
    pub fn build<R: Rng>(&self, input_dim: usize, classes: usize, rng: &mut R) -> Mlp {
        Mlp::new(
            MlpConfig {
                input_dim,
                hidden: self.hidden.clone(),
                classes,
                batch_norm: self.batch_norm,
            },
            rng,
        )
    }

    /// Multiplier to convert simulated bytes to paper-scale bytes:
    /// `reference_params / simulated_params`.
    #[must_use]
    pub fn paper_scale_factor(&self, simulated_params: usize) -> f64 {
        self.reference_params as f64 / simulated_params.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn profiles_build_distinct_sizes() {
        let mut rng = StdRng::seed_from_u64(0);
        let s = ModelProfile::shufflenet_like().build(64, 62, &mut rng);
        let m = ModelProfile::mobilenet_like().build(64, 62, &mut rng);
        let r = ModelProfile::resnet34_like().build(64, 35, &mut rng);
        assert!(r.num_params() > s.num_params());
        assert!(s.num_params() > m.num_params());
    }

    #[test]
    fn reference_ordering_matches_paper() {
        // ResNet-34 > ShuffleNet > MobileNet in true parameter count.
        let s = ModelProfile::shufflenet_like().reference_params;
        let m = ModelProfile::mobilenet_like().reference_params;
        let r = ModelProfile::resnet34_like().reference_params;
        assert!(r > s && s > m);
    }

    #[test]
    fn scale_factor_converts_param_counts() {
        let p = ModelProfile::shufflenet_like();
        assert!((p.paper_scale_factor(50_000) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn dataset_model_roundtrip() {
        for dm in [
            DatasetModel::ShuffleNet,
            DatasetModel::MobileNet,
            DatasetModel::ResNet34,
        ] {
            let parsed: DatasetModel = dm.name().parse().unwrap();
            assert_eq!(parsed, dm);
            let _ = dm.profile();
        }
        assert!("vgg".parse::<DatasetModel>().is_err());
    }

    #[test]
    fn all_profiles_use_batch_norm() {
        // Appendix D's BN handling must be exercised by every benchmark.
        assert!(ModelProfile::shufflenet_like().batch_norm);
        assert!(ModelProfile::mobilenet_like().batch_norm);
        assert!(ModelProfile::resnet34_like().batch_norm);
    }
}
