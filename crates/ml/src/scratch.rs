//! Pooled training workspace: every buffer one SGD step needs.
//!
//! A [`TrainScratch`] owns the activations, per-layer backward caches,
//! logit/gradient buffers, SGD velocity, and minibatch staging arrays used
//! by the `_into` training kernels on [`crate::MlpTopology`]
//! ([`crate::MlpTopology::loss_and_grad_into`] and friends). Callers keep
//! one scratch per worker and thread it through every step; after
//! [`TrainScratch::ensure`] has sized the buffers once, a steady-state
//! minibatch step performs **no heap allocation** — the contract the
//! federated simulator's client loop relies on.
//!
//! The scratch is model-shape agnostic: `ensure` re-sizes for whatever
//! `(topology, batch)` pair it is handed, so one pooled scratch can serve
//! clients of different models across rounds (buffers only grow).

use crate::mlp::MlpTopology;
use crate::optimizer::sgd_momentum_step;

/// Per-hidden-layer forward caches reused across minibatch steps.
///
/// Mirrors what the backward pass needs: the post-activation output (the
/// next layer's input), the ReLU mask, and — when the layer has BatchNorm —
/// the batch statistics and normalised activations.
#[derive(Debug, Default, Clone)]
pub(crate) struct LayerScratch {
    /// Pre-BatchNorm linear output, `batch × h`.
    pub(crate) z: Vec<f32>,
    /// Post-(BN+)ReLU activations, `batch × h` (input to the next layer).
    pub(crate) act: Vec<f32>,
    /// ReLU pass-through mask, `batch × h`.
    pub(crate) relu_mask: Vec<bool>,
    /// BN batch mean, `h` (kept until the deferred running-stat update).
    pub(crate) mu: Vec<f32>,
    /// BN batch variance, `h`.
    pub(crate) var: Vec<f32>,
    /// BN `1/√(var+ε)`, `h`.
    pub(crate) inv_std: Vec<f32>,
    /// BN normalised activations, `batch × h`.
    pub(crate) x_hat: Vec<f32>,
}

/// Reusable workspace for allocation-free training steps.
///
/// One scratch per worker: size it with [`TrainScratch::ensure`] (every
/// `_into` kernel does so itself), then thread it through
/// [`crate::MlpTopology::loss_and_grad_into`] /
/// [`TrainScratch::sgd_step`]; after the buffers have grown to the
/// working set, a steady-state minibatch step performs no heap
/// allocation.
#[derive(Debug, Default, Clone)]
pub struct TrainScratch {
    /// One cache bundle per hidden layer.
    pub(crate) layers: Vec<LayerScratch>,
    /// Raw logits → log-probabilities (in place), `batch × classes`.
    pub(crate) logits: Vec<f32>,
    /// Loss gradient w.r.t. the logits, `batch × classes`.
    pub(crate) d_logits: Vec<f32>,
    /// Flat parameter gradient, `d` (valid after a `loss_and_grad_into`).
    pub(crate) grad: Vec<f32>,
    /// SGD momentum buffer, `d` (reset per client, reused across steps).
    pub(crate) velocity: Vec<f32>,
    /// Rotating activation-gradient buffers for the backward pass.
    pub(crate) d_bufs: [Vec<f32>; 3],
    /// BN backward per-feature reduction `Σ dy`, `max hidden width`.
    pub(crate) sum_dy: Vec<f32>,
    /// BN backward per-feature reduction `Σ dy·x̂`, `max hidden width`.
    pub(crate) sum_dy_xhat: Vec<f32>,
    /// Minibatch feature staging for `sample_batch_into`-style fillers.
    pub batch_x: Vec<f32>,
    /// Minibatch label staging.
    pub batch_y: Vec<usize>,
}

/// Resizes `buf` to exactly `len` without shrinking capacity; contents are
/// unspecified afterwards (callers fully overwrite or explicitly zero).
pub(crate) fn size_to(buf: &mut Vec<f32>, len: usize) {
    if buf.len() != len {
        buf.clear();
        buf.resize(len, 0.0);
    }
}

/// Grows `buf`'s *total* capacity to at least `cap` (unlike
/// [`Vec::reserve`], which reserves on top of the current length and
/// would re-allocate a warm buffer on every call).
pub(crate) fn reserve_total(buf: &mut Vec<f32>, cap: usize) {
    if buf.capacity() < cap {
        buf.reserve(cap - buf.len());
    }
}

impl TrainScratch {
    /// Creates an empty scratch; buffers are sized lazily by
    /// [`TrainScratch::ensure`] (which every `_into` kernel calls).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sizes every buffer for one `(topology, batch)` shape. Idempotent
    /// and allocation-free once capacities have grown to the working set.
    pub fn ensure(&mut self, topo: &MlpTopology, batch: usize) {
        let cfg = topo.config();
        let n_hidden = cfg.hidden.len();
        if self.layers.len() != n_hidden {
            self.layers.clear();
            self.layers.resize(n_hidden, LayerScratch::default());
        }
        let mut max_width = cfg.input_dim;
        for (ls, &h) in self.layers.iter_mut().zip(&cfg.hidden) {
            size_to(&mut ls.z, batch * h);
            size_to(&mut ls.act, batch * h);
            if ls.relu_mask.len() != batch * h {
                ls.relu_mask.clear();
                ls.relu_mask.resize(batch * h, false);
            }
            size_to(&mut ls.mu, h);
            size_to(&mut ls.var, h);
            size_to(&mut ls.inv_std, h);
            size_to(&mut ls.x_hat, batch * h);
            max_width = max_width.max(h);
        }
        size_to(&mut self.logits, batch * cfg.classes);
        size_to(&mut self.d_logits, batch * cfg.classes);
        size_to(&mut self.grad, topo.num_params());
        size_to(&mut self.velocity, topo.num_params());
        for d in &mut self.d_bufs {
            reserve_total(d, batch * max_width.max(cfg.classes));
        }
        let max_h = cfg.hidden.iter().copied().max().unwrap_or(0);
        reserve_total(&mut self.sum_dy, max_h);
        reserve_total(&mut self.sum_dy_xhat, max_h);
        // `batch_x`/`batch_y` are deliberately NOT reserved here: callers
        // `mem::take` them around the step loop (the fields are empty
        // placeholders meanwhile), so reserving would allocate a buffer
        // that gets dropped when the warm one is put back.
    }

    /// The flat parameter gradient written by the last
    /// [`crate::MlpTopology::loss_and_grad_into`] call.
    #[must_use]
    pub fn grad(&self) -> &[f32] {
        &self.grad
    }

    /// The row-wise log-probabilities left by the last forward pass.
    #[must_use]
    pub fn logits(&self) -> &[f32] {
        &self.logits
    }

    /// Zeroes the pooled momentum buffer — call once per client so a
    /// recycled scratch behaves exactly like a fresh [`crate::Sgd`].
    pub fn reset_velocity(&mut self) {
        self.velocity.fill(0.0);
    }

    /// One SGD-with-momentum update from the scratch's gradient and
    /// pooled velocity: `v ← μ·v + g`, `w ← w − γ·v` — bit-identical to
    /// [`crate::Sgd::step`] on a fresh optimizer after
    /// [`TrainScratch::reset_velocity`].
    ///
    /// # Panics
    /// Panics if `params.len()` differs from the gradient length.
    pub fn sgd_step(&mut self, params: &mut [f32], lr: f32, momentum: f32) {
        sgd_momentum_step(params, &self.grad, &mut self.velocity, lr, momentum);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Mlp, MlpConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn topo(batch_norm: bool) -> Mlp {
        let mut rng = StdRng::seed_from_u64(1);
        Mlp::new(
            MlpConfig {
                input_dim: 5,
                hidden: vec![7, 6],
                classes: 4,
                batch_norm,
            },
            &mut rng,
        )
    }

    #[test]
    fn ensure_sizes_all_buffers() {
        let m = topo(true);
        let mut s = TrainScratch::new();
        s.ensure(m.topology(), 3);
        assert_eq!(s.layers.len(), 2);
        assert_eq!(s.layers[0].z.len(), 3 * 7);
        assert_eq!(s.layers[1].act.len(), 3 * 6);
        assert_eq!(s.logits.len(), 3 * 4);
        assert_eq!(s.grad.len(), m.num_params());
        assert_eq!(s.velocity.len(), m.num_params());
    }

    #[test]
    fn ensure_is_idempotent_and_pointer_stable() {
        let m = topo(true);
        let mut s = TrainScratch::new();
        s.ensure(m.topology(), 4);
        let grad_ptr = s.grad.as_ptr();
        let z_ptr = s.layers[0].z.as_ptr();
        s.ensure(m.topology(), 4);
        assert_eq!(s.grad.as_ptr(), grad_ptr);
        assert_eq!(s.layers[0].z.as_ptr(), z_ptr);
    }

    #[test]
    fn ensure_adapts_to_batch_changes() {
        let m = topo(false);
        let mut s = TrainScratch::new();
        s.ensure(m.topology(), 2);
        assert_eq!(s.logits.len(), 2 * 4);
        s.ensure(m.topology(), 8);
        assert_eq!(s.logits.len(), 8 * 4);
        assert_eq!(s.layers[1].relu_mask.len(), 8 * 6);
    }

    #[test]
    fn reset_velocity_zeroes_pool() {
        let m = topo(false);
        let mut s = TrainScratch::new();
        s.ensure(m.topology(), 1);
        s.velocity.fill(3.0);
        s.reset_velocity();
        assert!(s.velocity.iter().all(|v| *v == 0.0));
    }
}
