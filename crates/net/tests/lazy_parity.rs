//! Property tests pinning the lazy availability process to its eager
//! reference twin.
//!
//! Both [`LazyAvailability`] and [`AvailabilityTraceRef`] consume the
//! same counter-based per-client draw streams, so for every `(n, f,
//! mean, seed)` the lazy answer to "is client `i` online at round `r`?"
//! must be *bit-identical* to the eager trace's state after `r`
//! advances — no matter in which order, how often, or how far backwards
//! the lazy process is queried.

use gluefl_net::{AvailabilityTraceRef, LazyAvailability};
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Dense reference table: `ref[r][i]` = client `i`'s state at round `r`,
/// computed by the eager twin in strict round order.
fn eager_table(n: usize, f: f64, mean: f64, seed: u64, rounds: u32) -> Vec<Vec<bool>> {
    let mut eager = AvailabilityTraceRef::new(n, f, mean, seed);
    let mut table = Vec::with_capacity(rounds as usize);
    for _ in 0..rounds {
        table.push(eager.online().to_vec());
        eager.advance();
    }
    table
}

proptest! {
    /// Forward, round-ordered queries match the eager twin exactly.
    #[test]
    fn lazy_matches_eager_in_order(
        n in 1usize..120,
        f in 0.05f64..0.95,
        mean in 1.0f64..40.0,
        seed in 0u64..5_000,
    ) {
        let rounds = 30u32;
        let table = eager_table(n, f, mean, seed, rounds);
        let mut lazy = LazyAvailability::new(n, f, mean, seed);
        for r in 0..rounds {
            for (i, &expected) in table[r as usize].iter().enumerate() {
                prop_assert_eq!(
                    lazy.is_online(i, r),
                    expected,
                    "client {} round {} diverged", i, r
                );
            }
        }
    }

    /// Adversarial touch orders — shuffled `(client, round)` pairs,
    /// including backward jumps and repeats — still agree with the
    /// round-ordered eager reference bit for bit.
    #[test]
    fn lazy_is_touch_order_independent(
        n in 1usize..80,
        f in 0.05f64..0.95,
        mean in 1.0f64..40.0,
        seed in 0u64..5_000,
        order_seed in 0u64..1_000_000,
    ) {
        let rounds = 24u32;
        let table = eager_table(n, f, mean, seed, rounds);
        let mut order_rng = rand::rngs::StdRng::seed_from_u64(order_seed);
        let mut queries: Vec<(usize, u32)> = (0..n)
            .flat_map(|i| (0..rounds).map(move |r| (i, r)))
            .collect();
        queries.shuffle(&mut order_rng);
        // Repeat a random prefix to exercise re-query of settled cursors.
        let extra: Vec<(usize, u32)> = (0..queries.len() / 3)
            .map(|_| queries[order_rng.gen_range(0..queries.len())])
            .collect();
        queries.extend(extra);

        let mut lazy = LazyAvailability::new(n, f, mean, seed);
        for (i, r) in queries {
            prop_assert_eq!(
                lazy.is_online(i, r),
                table[r as usize][i],
                "client {} round {} diverged under shuffled touches", i, r
            );
        }
    }

    /// Two lazy instances over the same stream, driven in unrelated
    /// orders, are interchangeable: lazy ≡ lazy regardless of history.
    #[test]
    fn two_lazy_instances_agree(
        n in 1usize..80,
        f in 0.05f64..0.95,
        mean in 1.0f64..40.0,
        seed in 0u64..5_000,
        order_seed in 0u64..1_000_000,
    ) {
        let rounds = 24u32;
        let mut forward = LazyAvailability::new(n, f, mean, seed);
        let mut shuffled = LazyAvailability::new(n, f, mean, seed);
        let mut queries: Vec<(usize, u32)> = (0..n)
            .flat_map(|i| (0..rounds).map(move |r| (i, r)))
            .collect();
        let mut order_rng = rand::rngs::StdRng::seed_from_u64(order_seed);
        queries.shuffle(&mut order_rng);
        for (i, r) in queries {
            prop_assert_eq!(shuffled.is_online(i, r), forward.is_online(i, r));
        }
    }

    /// The lazy process only materialises state for touched clients.
    #[test]
    fn untouched_clients_stay_unmaterialised(
        n in 10usize..1000,
        f in 0.05f64..0.95,
        mean in 1.0f64..40.0,
        seed in 0u64..5_000,
    ) {
        let mut lazy = LazyAvailability::new(n, f, mean, seed);
        let touch = (n / 7).max(1);
        for i in 0..touch {
            let _ = lazy.is_online(i, 5);
        }
        prop_assert_eq!(lazy.touched(), touch);
    }
}
