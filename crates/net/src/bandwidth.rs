//! Per-client bandwidth sampling for the paper's three environments.

use rand::Rng;

/// One client's network link: download and upload bandwidth in Mbps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientLink {
    /// Server → device bandwidth, megabits per second.
    pub down_mbps: f64,
    /// Device → server bandwidth, megabits per second.
    pub up_mbps: f64,
}

/// The three network environments of Figure 9.
///
/// Each variant is a parametric (log-normal) model fit to the measurement
/// study the paper cites for that environment. Downloads and uploads are
/// positively correlated within a client (a device on a good network tends
/// to be good in both directions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetworkProfile {
    /// End-user edge devices, fit to the M-Lab NDT distribution of
    /// Figure 1: median download ≈30 Mbps with a heavy left tail (≈20% of
    /// devices ≤10 Mbps), uploads ≈1.7× slower on average.
    MlabEdge,
    /// Commercial 5G (Narayanan et al., SIGCOMM 2021): fast but variable
    /// downlink (median ≈400 Mbps), much slower uplink (median ≈40 Mbps).
    Commercial5G,
    /// Intra-datacenter (Mok et al., IMC 2021 on GCP): multi-Gbps and
    /// nearly symmetric, low variance.
    Datacenter,
}

/// Log-normal parameters: `exp(mu + sigma·z)` with `z ~ N(0,1)`.
#[derive(Debug, Clone, Copy)]
struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    fn sample(self, z: f64) -> f64 {
        (self.mu + self.sigma * z).exp()
    }
}

/// Parameters of one profile: marginals plus down/up correlation.
struct ProfileParams {
    down: LogNormal,
    up: LogNormal,
    /// Correlation between the down and up Gaussian factors.
    rho: f64,
    /// Clamp range in Mbps, mirroring the measurement floors/caps.
    clamp: (f64, f64),
}

impl NetworkProfile {
    fn params(self) -> ProfileParams {
        match self {
            // P(down <= 10) = Φ((ln10 − ln30)/1.3) ≈ 0.20, matching §2.2.
            // Median down 30 Mbps, median up 17 Mbps → same-size transfers
            // upload ≈1.7× slower than they download (§5.4).
            NetworkProfile::MlabEdge => ProfileParams {
                down: LogNormal {
                    mu: 30.0f64.ln(),
                    sigma: 1.3,
                },
                up: LogNormal {
                    mu: 17.0f64.ln(),
                    sigma: 1.5,
                },
                rho: 0.6,
                clamp: (0.1, 2_000.0),
            },
            NetworkProfile::Commercial5G => ProfileParams {
                down: LogNormal {
                    mu: 400.0f64.ln(),
                    sigma: 0.8,
                },
                up: LogNormal {
                    mu: 40.0f64.ln(),
                    sigma: 0.7,
                },
                rho: 0.5,
                clamp: (5.0, 4_000.0),
            },
            NetworkProfile::Datacenter => ProfileParams {
                down: LogNormal {
                    mu: 8_000.0f64.ln(),
                    sigma: 0.2,
                },
                up: LogNormal {
                    mu: 8_000.0f64.ln(),
                    sigma: 0.2,
                },
                rho: 0.9,
                clamp: (1_000.0, 32_000.0),
            },
        }
    }

    /// Samples one client's [`ClientLink`] from this profile.
    ///
    /// # Example
    /// ```
    /// use gluefl_net::NetworkProfile;
    /// use rand::SeedableRng;
    /// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    /// let link = NetworkProfile::Datacenter.sample_link(&mut rng);
    /// assert!(link.down_mbps >= 1_000.0);
    /// ```
    #[must_use]
    pub fn sample_link<R: Rng>(self, rng: &mut R) -> ClientLink {
        let p = self.params();
        let z1 = standard_normal(rng);
        let z2 = standard_normal(rng);
        // Correlated Gaussian factors for down and up.
        let zu = p.rho * z1 + (1.0 - p.rho * p.rho).sqrt() * z2;
        let down = p.down.sample(z1).clamp(p.clamp.0, p.clamp.1);
        let up = p.up.sample(zu).clamp(p.clamp.0, p.clamp.1);
        ClientLink {
            down_mbps: down,
            up_mbps: up,
        }
    }

    /// Samples `n` client links eagerly — O(N) time and memory. Retained
    /// for population-wide statistics (CDF plots) and as the reference the
    /// lazy [`Self::link_for`] path is distribution-checked against; the
    /// simulator itself samples links on demand via [`LinkCache`].
    #[must_use]
    pub fn sample_links<R: Rng>(self, rng: &mut R, n: usize) -> Vec<ClientLink> {
        (0..n).map(|_| self.sample_link(rng)).collect()
    }

    /// Client `client`'s link, derived on demand from `(seed, client)`.
    ///
    /// Counter-based: the draw is a pure function of its arguments, so any
    /// client's link can be produced in any order without materialising a
    /// `Vec<ClientLink>` for the whole population. Same marginal (and
    /// down/up joint) distribution as [`Self::sample_link`], since both
    /// push standard-normal draws through the same log-normal model.
    #[must_use]
    pub fn link_for(self, seed: u64, client: usize) -> ClientLink {
        let mut rng = gluefl_tensor::rng::seeded_rng(seed, "link", client as u64);
        self.sample_link(&mut rng)
    }

    /// All profiles, for sweeps.
    #[must_use]
    pub fn all() -> [NetworkProfile; 3] {
        [
            NetworkProfile::MlabEdge,
            NetworkProfile::Commercial5G,
            NetworkProfile::Datacenter,
        ]
    }

    /// A short human-readable name ("mlab", "5g", "datacenter").
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            NetworkProfile::MlabEdge => "mlab",
            NetworkProfile::Commercial5G => "5g",
            NetworkProfile::Datacenter => "datacenter",
        }
    }
}

impl std::str::FromStr for NetworkProfile {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "mlab" | "edge" => Ok(NetworkProfile::MlabEdge),
            "5g" => Ok(NetworkProfile::Commercial5G),
            "datacenter" | "dc" => Ok(NetworkProfile::Datacenter),
            other => Err(format!(
                "unknown network profile '{other}' (expected mlab|5g|datacenter)"
            )),
        }
    }
}

/// On-demand per-client links with a cached-per-participant fast path.
///
/// Wraps [`NetworkProfile::link_for`]: the first query for a client
/// samples its link from the counter-based `(seed, client)` stream; later
/// queries (sticky clients re-participate round after round) hit the
/// cache. Resident memory is O(clients ever queried), not O(N).
///
/// # Example
/// ```
/// use gluefl_net::{LinkCache, NetworkProfile};
/// let mut cache = LinkCache::new(NetworkProfile::MlabEdge, 42);
/// let a = cache.get(7);
/// assert_eq!(a, cache.get(7)); // cached, and deterministic anyway
/// assert_eq!(a, NetworkProfile::MlabEdge.link_for(42, 7));
/// assert_eq!(cache.cached(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct LinkCache {
    profile: NetworkProfile,
    seed: u64,
    cache: std::collections::HashMap<usize, ClientLink>,
}

impl LinkCache {
    /// Creates an empty cache over `profile` with the given stream seed.
    #[must_use]
    pub fn new(profile: NetworkProfile, seed: u64) -> Self {
        Self {
            profile,
            seed,
            cache: std::collections::HashMap::new(),
        }
    }

    /// Client `id`'s link — sampled on first access, cached after.
    pub fn get(&mut self, id: usize) -> ClientLink {
        let (profile, seed) = (self.profile, self.seed);
        *self
            .cache
            .entry(id)
            .or_insert_with(|| profile.link_for(seed, id))
    }

    /// Number of distinct clients sampled so far.
    #[must_use]
    pub fn cached(&self) -> usize {
        self.cache.len()
    }
}

/// Box–Muller standard normal draw.
fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 > f64::EPSILON {
            let u2: f64 = rng.gen();
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

/// Computes the empirical CDF of a bandwidth sample: returns `(sorted
/// values, cumulative probabilities)` — the series plotted in Figure 1b.
///
/// # Example
/// ```
/// let (xs, ps) = gluefl_net::cdf(&[3.0, 1.0, 2.0]);
/// assert_eq!(xs, vec![1.0, 2.0, 3.0]);
/// assert!((ps[2] - 1.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn cdf(values: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let mut xs = values.to_vec();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("bandwidths are finite"));
    let n = xs.len() as f64;
    let ps = (1..=xs.len()).map(|i| i as f64 / n).collect();
    (xs, ps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn links(profile: NetworkProfile, n: usize) -> Vec<ClientLink> {
        let mut rng = StdRng::seed_from_u64(1234);
        profile.sample_links(&mut rng, n)
    }

    #[test]
    fn mlab_left_tail_matches_paper() {
        // §2.2: "around 20% of devices have a download bandwidth of at
        // most 10 Mbps".
        let ls = links(NetworkProfile::MlabEdge, 20_000);
        let slow = ls.iter().filter(|l| l.down_mbps <= 10.0).count() as f64 / 20_000.0;
        assert!((slow - 0.20).abs() < 0.02, "P(down<=10Mbps) = {slow}");
    }

    #[test]
    fn mlab_upload_slower_than_download_on_average() {
        let ls = links(NetworkProfile::MlabEdge, 20_000);
        let down_med = median(ls.iter().map(|l| l.down_mbps));
        let up_med = median(ls.iter().map(|l| l.up_mbps));
        // §5.4: uploading the same update takes ~70% longer than
        // downloading, i.e. median down / median up ≈ 1.7.
        let ratio = down_med / up_med;
        assert!((1.4..2.2).contains(&ratio), "down/up median ratio {ratio}");
    }

    #[test]
    fn five_g_downlink_dominates_uplink() {
        let ls = links(NetworkProfile::Commercial5G, 5_000);
        let down_med = median(ls.iter().map(|l| l.down_mbps));
        let up_med = median(ls.iter().map(|l| l.up_mbps));
        assert!(down_med > 5.0 * up_med, "5G: {down_med} vs {up_med}");
    }

    #[test]
    fn datacenter_is_fast_and_symmetric() {
        let ls = links(NetworkProfile::Datacenter, 5_000);
        let down_med = median(ls.iter().map(|l| l.down_mbps));
        let up_med = median(ls.iter().map(|l| l.up_mbps));
        assert!(down_med > 4_000.0);
        assert!((down_med / up_med - 1.0).abs() < 0.2);
    }

    #[test]
    fn links_are_clamped() {
        for p in NetworkProfile::all() {
            for l in links(p, 5_000) {
                assert!(l.down_mbps > 0.0 && l.down_mbps <= 32_000.0);
                assert!(l.up_mbps > 0.0 && l.up_mbps <= 32_000.0);
            }
        }
    }

    #[test]
    fn down_up_positively_correlated() {
        let ls = links(NetworkProfile::MlabEdge, 20_000);
        let lx: Vec<f64> = ls.iter().map(|l| l.down_mbps.ln()).collect();
        let ly: Vec<f64> = ls.iter().map(|l| l.up_mbps.ln()).collect();
        let r = pearson(&lx, &ly);
        assert!(r > 0.4, "log-bandwidth correlation {r}");
    }

    #[test]
    fn cdf_is_monotone() {
        let ls = links(NetworkProfile::MlabEdge, 1000);
        let (xs, ps) = cdf(&ls.iter().map(|l| l.down_mbps).collect::<Vec<_>>());
        assert!(xs.windows(2).all(|w| w[0] <= w[1]));
        assert!(ps.windows(2).all(|w| w[0] <= w[1]));
        assert!((ps.last().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn profile_name_parse_roundtrip() {
        for p in NetworkProfile::all() {
            let parsed: NetworkProfile = p.name().parse().unwrap();
            assert_eq!(parsed, p);
        }
        assert!("bogus".parse::<NetworkProfile>().is_err());
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let a = links(NetworkProfile::MlabEdge, 10);
        let b = links(NetworkProfile::MlabEdge, 10);
        assert_eq!(a, b);
    }

    #[test]
    fn link_for_is_order_independent() {
        // Pure function of (seed, client): querying 5 then 3 equals
        // querying 3 then 5, and repeated queries agree.
        let p = NetworkProfile::MlabEdge;
        let forward: Vec<ClientLink> = (0..10).map(|i| p.link_for(99, i)).collect();
        let backward: Vec<ClientLink> = (0..10).rev().map(|i| p.link_for(99, i)).collect();
        for (i, l) in backward.iter().rev().enumerate() {
            assert_eq!(*l, forward[i]);
        }
        assert_ne!(forward[0], forward[1], "distinct clients, distinct draws");
    }

    #[test]
    fn link_cache_hits_and_matches_lazy_path() {
        let mut cache = LinkCache::new(NetworkProfile::Commercial5G, 7);
        let a = cache.get(123);
        let b = cache.get(123);
        assert_eq!(a, b);
        assert_eq!(cache.cached(), 1);
        assert_eq!(a, NetworkProfile::Commercial5G.link_for(7, 123));
    }

    fn median(vals: impl Iterator<Item = f64>) -> f64 {
        let mut v: Vec<f64> = vals.collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    }

    fn pearson(x: &[f64], y: &[f64]) -> f64 {
        let n = x.len() as f64;
        let mx = x.iter().sum::<f64>() / n;
        let my = y.iter().sum::<f64>() / n;
        let cov: f64 = x.iter().zip(y).map(|(a, b)| (a - mx) * (b - my)).sum();
        let vx: f64 = x.iter().map(|a| (a - mx).powi(2)).sum();
        let vy: f64 = y.iter().map(|b| (b - my).powi(2)).sum();
        cov / (vx.sqrt() * vy.sqrt())
    }
}
