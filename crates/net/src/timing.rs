//! Transfer- and round-timing primitives.

/// Fixed per-transfer latency floor in seconds (connection setup + RTTs).
pub const LATENCY_FLOOR_SECS: f64 = 0.05;

/// Seconds to move `bytes` over a `mbps` link, including the latency floor.
///
/// # Panics
/// Panics if `mbps <= 0`.
///
/// # Example
/// ```
/// use gluefl_net::timing::seconds_for_bytes;
/// // 10 MB over 10 Mbps ≈ 8 seconds of serialisation time.
/// let t = seconds_for_bytes(10_000_000, 10.0);
/// assert!((t - 8.05).abs() < 1e-9);
/// ```
#[must_use]
pub fn seconds_for_bytes(bytes: u64, mbps: f64) -> f64 {
    assert!(mbps > 0.0, "bandwidth must be positive, got {mbps}");
    LATENCY_FLOOR_SECS + (bytes as f64 * 8.0) / (mbps * 1e6)
}

/// Per-client timing of one training round.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClientRoundTime {
    /// Seconds spent downloading the model update.
    pub download_secs: f64,
    /// Seconds spent on local computation.
    pub compute_secs: f64,
    /// Seconds spent uploading the masked gradient.
    pub upload_secs: f64,
}

impl ClientRoundTime {
    /// Total wall-clock seconds for this client's round.
    #[must_use]
    pub fn total_secs(&self) -> f64 {
        self.download_secs + self.compute_secs + self.upload_secs
    }
}

/// Selects the indices of the `keep` fastest clients by total round time
/// (the over-commitment rule: "use the first K uploaded updates", §5.1).
///
/// Ties are broken by index for determinism; the result is sorted by
/// completion time (fastest first).
///
/// # Example
/// ```
/// use gluefl_net::timing::{fastest, ClientRoundTime};
/// let times = vec![
///     ClientRoundTime { download_secs: 9.0, ..Default::default() },
///     ClientRoundTime { download_secs: 1.0, ..Default::default() },
///     ClientRoundTime { download_secs: 5.0, ..Default::default() },
/// ];
/// assert_eq!(fastest(&times, 2), vec![1, 2]);
/// ```
#[must_use]
pub fn fastest(times: &[ClientRoundTime], keep: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..times.len()).collect();
    order.sort_by(|&a, &b| {
        times[a]
            .total_secs()
            .partial_cmp(&times[b].total_secs())
            .expect("round times are finite")
            .then(a.cmp(&b))
    });
    order.truncate(keep.min(times.len()));
    order
}

/// Maps a *modeled* client duration onto a wall-clock deadline for a real
/// transport: `floor + scale · modeled_secs`, capped at one hour so a
/// pathological model value cannot produce an unbounded wait.
///
/// A server granting a client its upload slot knows the client's modeled
/// upload time (predicted bytes over the sampled link) before any bytes
/// arrive; `scale` (`secs_per_modeled_sec`) converts that simulated time
/// into real patience. `scale = 0` degenerates to the flat `floor` —
/// useful for loopback tests where modeled hours must not become real
/// ones.
///
/// # Example
/// ```
/// use std::time::Duration;
/// use gluefl_net::timing::wall_deadline;
/// let d = wall_deadline(20.0, Duration::from_secs(5), 0.1);
/// assert_eq!(d, Duration::from_secs(7)); // 5 + 0.1·20
/// ```
#[must_use]
pub fn wall_deadline(
    modeled_secs: f64,
    floor: std::time::Duration,
    scale: f64,
) -> std::time::Duration {
    let extra = (modeled_secs.max(0.0) * scale.max(0.0)).min(3600.0);
    floor + std::time::Duration::from_secs_f64(extra)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_includes_latency_floor() {
        assert!((seconds_for_bytes(0, 100.0) - LATENCY_FLOOR_SECS).abs() < 1e-12);
    }

    #[test]
    fn transfer_time_matches_hand_calculation() {
        // 1 MB over 8 Mbps = 1 second + floor.
        let t = seconds_for_bytes(1_000_000, 8.0);
        assert!((t - (1.0 + LATENCY_FLOOR_SECS)).abs() < 1e-12);
    }

    #[test]
    fn slower_link_takes_longer() {
        assert!(seconds_for_bytes(1_000_000, 1.0) > seconds_for_bytes(1_000_000, 100.0));
    }

    #[test]
    fn round_time_sums_phases() {
        let t = ClientRoundTime {
            download_secs: 1.0,
            compute_secs: 2.0,
            upload_secs: 3.0,
        };
        assert!((t.total_secs() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn fastest_selects_by_total_time() {
        let mk = |d: f64| ClientRoundTime {
            download_secs: d,
            compute_secs: 0.0,
            upload_secs: 0.0,
        };
        let times = vec![mk(3.0), mk(1.0), mk(2.0), mk(1.0)];
        // Tie between 1 and 3 broken by index.
        assert_eq!(fastest(&times, 3), vec![1, 3, 2]);
        assert_eq!(fastest(&times, 10), vec![1, 3, 2, 0]);
        assert!(fastest(&times, 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn rejects_zero_bandwidth() {
        let _ = seconds_for_bytes(1, 0.0);
    }

    #[test]
    fn wall_deadline_scales_and_caps() {
        use std::time::Duration;
        let floor = Duration::from_secs(2);
        assert_eq!(wall_deadline(0.0, floor, 1.0), floor);
        assert_eq!(wall_deadline(10.0, floor, 0.0), floor);
        assert_eq!(wall_deadline(-5.0, floor, 1.0), floor);
        assert_eq!(
            wall_deadline(4.0, floor, 0.5),
            floor + Duration::from_secs(2)
        );
        // A pathological modeled time cannot exceed floor + 1h.
        assert_eq!(
            wall_deadline(1e12, floor, 1.0),
            floor + Duration::from_secs(3600)
        );
    }
}
