//! Per-round client availability as a two-state on/off renewal process.
//!
//! Clients alternate between *online* sessions and *offline* gaps whose
//! lengths are geometrically distributed — the discrete analogue of the
//! exponential session lengths observed in mobile-device traces (FedScale's
//! client-behaviour trace). The process is realised two ways over the same
//! per-client random streams:
//!
//! * [`LazyAvailability`] — the production form. A client's entire
//!   trajectory is a pure function of `(seed, client)`, so its state at any
//!   round is computed on demand in O(1) amortised time and O(touched
//!   clients) memory. A round that invites `K` of `N` clients touches `K`
//!   cursors and never scans the population.
//! * [`AvailabilityTraceRef`] — the eager reference twin: a dense
//!   `Vec<bool>` advanced one round at a time for *all* clients, consuming
//!   the identical per-client streams. Bit-identical to the lazy process by
//!   construction; retained for tests, examples that want population-wide
//!   statistics, and as the O(N) baseline in `expt kernels`.
//! * [`DiurnalAvailability`] — a day/night-modulated dense variant used in
//!   examples.
//!
//! # Counter-based streams and the closed-form skip distribution
//!
//! Every random decision about client `i` is indexed, not sequenced: draw
//! `j` of client `i` is `splitmix64(seed_i + j·φ)` where `seed_i` derives
//! from `(master_seed, i)` and `φ` is the splitmix64 golden-ratio
//! increment — i.e. the canonical splitmix64 output stream seeded at
//! `seed_i`. Draw 0 picks the round-0 state from the stationary
//! distribution; draw `j ≥ 1` is the length of the `j`-th state segment.
//!
//! Segment lengths use the inverse CDF of the geometric distribution. A
//! state with per-round flip probability `p` persists for
//! `L ~ Geometric(p)` rounds, `P(L = k) = (1−p)^{k−1}·p` for `k ≥ 1`,
//! which is sampled closed-form from one uniform `u ∈ [0, 1)` as
//!
//! ```text
//! L = 1 + ⌊ ln(1 − u) / ln(1 − p) ⌋
//! ```
//!
//! This lets the lazy cursor *skip* an arbitrary number of rounds in one
//! draw instead of flipping a Bernoulli coin per round per client. Because
//! the geometric distribution is memoryless, the segment formulation is
//! distributionally identical to the per-round Markov chain it replaces,
//! and because draws are indexed, the result is bit-identical no matter
//! which order clients (or rounds) are queried in: lazy ≡ eager ≡ serial ≡
//! parallel.

use gluefl_tensor::rng::{derive_seed, splitmix64};
use rand::Rng;
use std::collections::HashMap;

/// The splitmix64 golden-ratio increment (stream counter stride).
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Upper bound on one segment length, so cursor arithmetic cannot
/// overflow even for degenerate flip probabilities.
const MAX_SEGMENT: u64 = 1 << 32;

/// Inverse-CDF sample of `Geometric(p)` (support `k ≥ 1`) from `u ∈ [0,1)`.
fn geometric_len(u: f64, p: f64) -> u64 {
    if p >= 1.0 {
        return 1;
    }
    debug_assert!(p > 0.0, "flip probability must be positive");
    let ratio = (1.0 - u).ln() / (1.0 - p).ln();
    // NaN (0/0 for degenerate inputs) must also take the clamped branch.
    if ratio.is_nan() || ratio >= MAX_SEGMENT as f64 {
        return MAX_SEGMENT;
    }
    1 + ratio as u64
}

/// Shared parameters + stream discipline of the two-state session process.
#[derive(Debug, Clone, Copy, PartialEq)]
struct SessionModel {
    online_fraction: f64,
    /// P(online → offline) per round; 1/mean_session_rounds.
    p_leave: f64,
    /// P(offline → online) per round; stationary-balance solution.
    p_join: f64,
    seed: u64,
}

impl SessionModel {
    fn new(online_fraction: f64, mean_session_rounds: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&online_fraction) && online_fraction > 0.0,
            "online fraction must be in (0,1)"
        );
        assert!(
            mean_session_rounds >= 1.0,
            "mean session must be >= 1 round"
        );
        // Geometric session length: mean = 1/p_leave.
        let p_leave = 1.0 / mean_session_rounds;
        // Stationary fraction f = p_join/(p_join + p_leave)
        //   → p_join = f·p_leave/(1−f).
        let p_join = (online_fraction * p_leave / (1.0 - online_fraction)).min(1.0);
        Self {
            online_fraction,
            p_leave,
            p_join,
            seed,
        }
    }

    /// Draw `draw` of client `client`'s stream, as a uniform in `[0,1)`.
    fn unit(self, client: usize, draw: u32) -> f64 {
        let base = derive_seed(self.seed, "avail-client", client as u64);
        let bits = splitmix64(base.wrapping_add(u64::from(draw).wrapping_mul(GOLDEN)));
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Round-0 state, from the stationary distribution (draw 0).
    fn initial_state(self, client: usize) -> bool {
        self.unit(client, 0) < self.online_fraction
    }

    /// Length of the segment whose sample is stream draw `draw`, given the
    /// state held *during* that segment.
    fn segment_len(self, client: usize, draw: u32, online: bool) -> u64 {
        let p = if online { self.p_leave } else { self.p_join };
        geometric_len(self.unit(client, draw), p)
    }
}

/// One client's lazily-advanced position in its segment sequence.
#[derive(Debug, Clone, Copy)]
struct Cursor {
    online: bool,
    /// First round covered by the current segment.
    seg_start: u64,
    /// One past the last round covered by the current segment.
    seg_end: u64,
    /// Stream index of the *next* segment-length draw.
    next_draw: u32,
}

impl Cursor {
    fn fresh(model: SessionModel, client: usize) -> Self {
        let online = model.initial_state(client);
        let seg_end = model.segment_len(client, 1, online);
        Self {
            online,
            seg_start: 0,
            seg_end,
            next_draw: 2,
        }
    }
}

/// Lazy, counter-based client availability: O(1) amortised per query,
/// O(touched clients) memory, bit-identical under any touch order.
///
/// See the module docs for the stream discipline and the
/// closed-form skip distribution. Queries for monotonically non-decreasing
/// rounds advance a per-client cursor segment by segment; a query for an
/// earlier round deterministically replays the client's stream from round
/// 0, so out-of-order access changes cost, never answers.
///
/// # Example
///
/// ```
/// use gluefl_net::LazyAvailability;
/// let mut lazy = LazyAvailability::new(1_000_000, 0.8, 20.0, 7);
/// // Touching two clients costs two cursors, not a million:
/// let a = lazy.is_online(3, 10);
/// let b = lazy.is_online(999_999, 10);
/// assert_eq!(lazy.touched(), 2);
/// // Pure function of (seed, client, round): re-query agrees.
/// assert_eq!(a, lazy.is_online(3, 10));
/// assert_eq!(b, lazy.is_online(999_999, 10));
/// ```
#[derive(Debug, Clone)]
pub struct LazyAvailability {
    n: usize,
    /// `None` = every client is always online (availability disabled).
    model: Option<SessionModel>,
    cursors: HashMap<usize, Cursor>,
}

impl LazyAvailability {
    /// Creates the process over `n` clients with stationary online fraction
    /// `online_fraction` and mean online session length
    /// `mean_session_rounds` (in rounds). Construction is O(1): no
    /// per-client state exists until a client is first queried.
    ///
    /// # Panics
    /// Panics unless `0 < online_fraction < 1` and
    /// `mean_session_rounds >= 1`.
    #[must_use]
    pub fn new(n: usize, online_fraction: f64, mean_session_rounds: f64, seed: u64) -> Self {
        Self {
            n,
            model: Some(SessionModel::new(
                online_fraction,
                mean_session_rounds,
                seed,
            )),
            cursors: HashMap::new(),
        }
    }

    /// A process where every client is always online (used to disable
    /// availability effects in ablations).
    #[must_use]
    pub fn always_on(n: usize) -> Self {
        Self {
            n,
            model: None,
            cursors: HashMap::new(),
        }
    }

    /// Number of clients tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` when the process tracks zero clients.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Whether client `id` is online at `round`.
    ///
    /// Amortised O(1) for non-decreasing rounds per client; a backward
    /// query replays the client's segment stream from round 0.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn is_online(&mut self, id: usize, round: u32) -> bool {
        assert!(id < self.n, "client {id} out of range {}", self.n);
        let Some(model) = self.model else {
            return true;
        };
        let round = u64::from(round);
        let cur = self
            .cursors
            .entry(id)
            .or_insert_with(|| Cursor::fresh(model, id));
        if round < cur.seg_start {
            // Adversarial (backward) touch: replay deterministically.
            *cur = Cursor::fresh(model, id);
        }
        while round >= cur.seg_end {
            cur.online = !cur.online;
            cur.seg_start = cur.seg_end;
            let len = model.segment_len(id, cur.next_draw, cur.online);
            cur.seg_end = cur.seg_end.saturating_add(len);
            cur.next_draw = cur.next_draw.saturating_add(1);
        }
        cur.online
    }

    /// Number of clients whose cursors have been materialised — the
    /// process's resident state is proportional to this, not to `N`.
    #[must_use]
    pub fn touched(&self) -> usize {
        self.cursors.len()
    }
}

/// Eager reference twin of [`LazyAvailability`]: a dense per-round scan
/// over the whole population, consuming the identical counter-based
/// per-client streams.
///
/// `online()[id]` after `r` calls to [`advance`](Self::advance) equals
/// `LazyAvailability::is_online(id, r)` bit-for-bit (pinned by the
/// `lazy_parity` proptest suite). Each advance is O(N); this type exists
/// as the test oracle, the `avail_advance_1m` kernel baseline, and for
/// callers that genuinely want population-wide statistics per round.
///
/// # Example
///
/// ```
/// use gluefl_net::{AvailabilityTraceRef, LazyAvailability};
/// let mut eager = AvailabilityTraceRef::new(100, 0.8, 20.0, 7);
/// let mut lazy = LazyAvailability::new(100, 0.8, 20.0, 7);
/// for round in 0..5 {
///     assert_eq!(eager.is_online(42), lazy.is_online(42, round));
///     eager.advance();
/// }
/// ```
#[derive(Debug, Clone)]
pub struct AvailabilityTraceRef {
    model: Option<SessionModel>,
    online: Vec<bool>,
    /// Rounds left before the current segment ends, per client.
    remaining: Vec<u64>,
    /// Stream index of each client's next segment-length draw.
    next_draw: Vec<u32>,
}

impl AvailabilityTraceRef {
    /// Creates the dense twin over `n` clients at round 0; same parameters
    /// and panics as [`LazyAvailability::new`]. Construction is O(N).
    #[must_use]
    pub fn new(n: usize, online_fraction: f64, mean_session_rounds: f64, seed: u64) -> Self {
        let model = SessionModel::new(online_fraction, mean_session_rounds, seed);
        let online: Vec<bool> = (0..n).map(|i| model.initial_state(i)).collect();
        let remaining: Vec<u64> = online
            .iter()
            .enumerate()
            .map(|(i, &state)| model.segment_len(i, 1, state))
            .collect();
        Self {
            model: Some(model),
            online,
            remaining,
            next_draw: vec![2; n],
        }
    }

    /// A dense twin where every client is always online.
    #[must_use]
    pub fn always_on(n: usize) -> Self {
        Self {
            model: None,
            online: vec![true; n],
            remaining: Vec::new(),
            next_draw: Vec::new(),
        }
    }

    /// Number of clients tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.online.len()
    }

    /// Returns `true` when the trace tracks zero clients.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.online.is_empty()
    }

    /// Current online flags, indexed by client id.
    #[must_use]
    pub fn online(&self) -> &[bool] {
        &self.online
    }

    /// Whether client `id` is online at the current round.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn is_online(&self, id: usize) -> bool {
        self.online[id]
    }

    /// Advances every client's state by one round — the O(N) scan the
    /// lazy process exists to avoid.
    pub fn advance(&mut self) {
        let Some(model) = self.model else { return };
        for i in 0..self.online.len() {
            self.remaining[i] -= 1;
            if self.remaining[i] == 0 {
                self.online[i] = !self.online[i];
                self.remaining[i] = model.segment_len(i, self.next_draw[i], self.online[i]);
                self.next_draw[i] = self.next_draw[i].saturating_add(1);
            }
        }
    }
}

/// A diurnal availability process: two-state on/off dynamics modulated by
/// a day/night cycle, as observed in FedScale's real client-behaviour
/// trace (devices are predominantly online over night-time charging
/// hours).
///
/// Each client gets a random phase offset; its join probability is scaled
/// by a sinusoidal daily factor, so the online population swings between
/// roughly `peak_fraction` and `trough_fraction`.
///
/// # Example
///
/// ```
/// use gluefl_net::DiurnalAvailability;
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let mut trace = DiurnalAvailability::new(200, 0.9, 0.3, 48.0, &mut rng);
/// for _ in 0..10 { trace.advance(&mut rng); }
/// let online = trace.online().iter().filter(|&&b| b).count();
/// assert!(online > 0);
/// ```
#[derive(Debug, Clone)]
pub struct DiurnalAvailability {
    online: Vec<bool>,
    phase: Vec<f64>,
    peak: f64,
    trough: f64,
    /// Rounds per simulated day.
    period_rounds: f64,
    p_leave: f64,
    round: u64,
}

impl DiurnalAvailability {
    /// Creates a diurnal trace over `n` clients oscillating between
    /// `trough_fraction` and `peak_fraction` online with a cycle of
    /// `period_rounds` rounds.
    ///
    /// # Panics
    /// Panics unless `0 < trough <= peak < 1` and `period_rounds >= 2`.
    #[must_use]
    pub fn new<R: Rng>(
        n: usize,
        peak_fraction: f64,
        trough_fraction: f64,
        period_rounds: f64,
        rng: &mut R,
    ) -> Self {
        assert!(
            trough_fraction > 0.0 && trough_fraction <= peak_fraction && peak_fraction < 1.0,
            "need 0 < trough <= peak < 1"
        );
        assert!(period_rounds >= 2.0, "period must span at least 2 rounds");
        let mid = (peak_fraction + trough_fraction) / 2.0;
        Self {
            online: (0..n).map(|_| rng.gen::<f64>() < mid).collect(),
            // Mostly-coherent phases (a quarter-cycle of jitter): clients
            // share a dominant day/night rhythm with some spread, so the
            // population-level swing stays visible instead of cancelling.
            phase: (0..n)
                .map(|_| rng.gen_range(0.0..std::f64::consts::FRAC_PI_2))
                .collect(),
            peak: peak_fraction,
            trough: trough_fraction,
            period_rounds,
            // Responsive chain (mean session 4 rounds) so the population
            // tracks the daily cycle with little lag.
            p_leave: 0.25,
            round: 0,
        }
    }

    /// Current online flags, indexed by client id.
    #[must_use]
    pub fn online(&self) -> &[bool] {
        &self.online
    }

    /// Number of clients tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.online.len()
    }

    /// Returns `true` when no clients are tracked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.online.is_empty()
    }

    /// The target online fraction for a client with phase `phi` at the
    /// current round.
    fn target_fraction(&self, phi: f64) -> f64 {
        let t = self.round as f64 / self.period_rounds * std::f64::consts::TAU;
        let mid = (self.peak + self.trough) / 2.0;
        let amp = (self.peak - self.trough) / 2.0;
        mid + amp * (t + phi).sin()
    }

    /// Advances all clients by one round.
    pub fn advance<R: Rng>(&mut self, rng: &mut R) {
        self.round += 1;
        for i in 0..self.online.len() {
            let f = self.target_fraction(self.phase[i]);
            // Stationary fraction f requires p_join = f·p_leave/(1−f).
            let p_join = (f * self.p_leave / (1.0 - f)).min(1.0);
            let flip = if self.online[i] { self.p_leave } else { p_join };
            if rng.gen::<f64>() < flip {
                self.online[i] = !self.online[i];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn stationary_fraction_holds() {
        let mut t = AvailabilityTraceRef::new(2_000, 0.7, 15.0, 1);
        let mut total_online = 0usize;
        let rounds = 200;
        for _ in 0..rounds {
            t.advance();
            total_online += t.online().iter().filter(|&&b| b).count();
        }
        let frac = total_online as f64 / (2_000 * rounds) as f64;
        assert!((frac - 0.7).abs() < 0.03, "online fraction {frac}");
    }

    #[test]
    fn sessions_have_expected_length() {
        let mut t = AvailabilityTraceRef::new(200, 0.5, 10.0, 2);
        // Measure online-run lengths of client 0 over many rounds.
        let mut lengths = Vec::new();
        let mut run = 0usize;
        for _ in 0..60_000 {
            t.advance();
            if t.is_online(0) {
                run += 1;
            } else if run > 0 {
                lengths.push(run);
                run = 0;
            }
        }
        let mean = lengths.iter().sum::<usize>() as f64 / lengths.len() as f64;
        assert!((mean - 10.0).abs() < 1.0, "mean session {mean}");
    }

    #[test]
    fn lazy_matches_eager_in_round_order() {
        let n = 300;
        let mut eager = AvailabilityTraceRef::new(n, 0.8, 12.0, 3);
        let mut lazy = LazyAvailability::new(n, 0.8, 12.0, 3);
        for round in 0..100u32 {
            for id in 0..n {
                assert_eq!(
                    lazy.is_online(id, round),
                    eager.is_online(id),
                    "client {id} diverged at round {round}"
                );
            }
            eager.advance();
        }
    }

    #[test]
    fn lazy_is_touch_order_independent() {
        let n = 50;
        let rounds = 40u32;
        // Forward-order reference answers.
        let reference: Vec<Vec<bool>> = {
            let mut lazy = LazyAvailability::new(n, 0.6, 5.0, 9);
            (0..rounds)
                .map(|r| (0..n).map(|id| lazy.is_online(id, r)).collect())
                .collect()
        };
        // Shuffled (client, round) touch order, including backward jumps.
        let mut queries: Vec<(usize, u32)> = (0..n)
            .flat_map(|id| (0..rounds).map(move |r| (id, r)))
            .collect();
        let mut rng = StdRng::seed_from_u64(4);
        use rand::seq::SliceRandom;
        queries.shuffle(&mut rng);
        let mut lazy = LazyAvailability::new(n, 0.6, 5.0, 9);
        for (id, r) in queries {
            assert_eq!(
                lazy.is_online(id, r),
                reference[r as usize][id],
                "client {id} round {r} depends on touch order"
            );
        }
    }

    #[test]
    fn lazy_state_is_proportional_to_touched_clients() {
        let mut lazy = LazyAvailability::new(1_000_000, 0.8, 40.0, 5);
        for id in (0..1_000_000).step_by(100_000) {
            let _ = lazy.is_online(id, 500);
        }
        assert_eq!(lazy.touched(), 10);
    }

    #[test]
    fn always_on_never_drops() {
        let mut t = AvailabilityTraceRef::always_on(50);
        let mut lazy = LazyAvailability::always_on(50);
        for round in 0..100u32 {
            t.advance();
            assert!(t.online().iter().all(|&b| b));
            assert!((0..50).all(|id| lazy.is_online(id, round)));
        }
        assert_eq!(lazy.touched(), 0, "always-on must not materialise cursors");
    }

    #[test]
    #[should_panic(expected = "online fraction")]
    fn rejects_bad_fraction() {
        let _ = LazyAvailability::new(10, 1.5, 10.0, 0);
    }

    #[test]
    #[should_panic(expected = "mean session")]
    fn eager_rejects_bad_mean() {
        let _ = AvailabilityTraceRef::new(10, 0.5, 0.5, 0);
    }

    #[test]
    fn geometric_len_matches_distribution() {
        // Inverse-CDF boundaries: P(L <= k) = 1 - (1-p)^k.
        let p = 0.25f64;
        for k in 1..=8u32 {
            let below = 1.0 - (1.0 - p).powi(k as i32) - 1e-12;
            let above = 1.0 - (1.0 - p).powi(k as i32 - 1) + 1e-12;
            assert_eq!(geometric_len(below, p), u64::from(k));
            assert_eq!(geometric_len(above, p), u64::from(k));
        }
        assert_eq!(geometric_len(0.0, p), 1);
        assert_eq!(geometric_len(0.999_999, 1.0), 1);
    }

    #[test]
    fn diurnal_population_oscillates() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut t = DiurnalAvailability::new(3_000, 0.85, 0.25, 50.0, &mut rng);
        // Warm into the stationary regime, then record per-round counts.
        for _ in 0..100 {
            t.advance(&mut rng);
        }
        let mut counts = Vec::new();
        for _ in 0..200 {
            t.advance(&mut rng);
            counts.push(t.online().iter().filter(|&&b| b).count() as f64 / 3_000.0);
        }
        let max = counts.iter().cloned().fold(0.0, f64::max);
        let min = counts.iter().cloned().fold(1.0, f64::min);
        assert!(
            max - min > 0.1,
            "population swing too small: {min:.3}..{max:.3}"
        );
        assert!(
            max <= 0.95 && min >= 0.1,
            "swing out of range {min:.3}..{max:.3}"
        );
    }

    #[test]
    fn diurnal_mean_between_trough_and_peak() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut t = DiurnalAvailability::new(2_000, 0.8, 0.4, 40.0, &mut rng);
        let mut total = 0usize;
        let rounds = 400;
        for _ in 0..rounds {
            t.advance(&mut rng);
            total += t.online().iter().filter(|&&b| b).count();
        }
        let mean = total as f64 / (2_000 * rounds) as f64;
        assert!((0.4..=0.8).contains(&mean), "mean online fraction {mean}");
    }

    #[test]
    #[should_panic(expected = "trough")]
    fn diurnal_rejects_inverted_fractions() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = DiurnalAvailability::new(10, 0.3, 0.8, 40.0, &mut rng);
    }
}
