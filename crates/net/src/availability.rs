//! Per-round client availability as a two-state Markov process.

use rand::Rng;

/// A per-client on/off availability process, advanced once per round.
///
/// This stands in for FedScale's real-world client behaviour trace: each
/// client alternates between *online* sessions and *offline* gaps whose
/// lengths are geometrically distributed, which is the discrete analogue
/// of the exponential session lengths observed in mobile-device traces.
/// The stationary online fraction is
/// `p_join / (p_join + p_leave)`.
///
/// # Example
///
/// ```
/// use gluefl_net::AvailabilityTrace;
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let mut trace = AvailabilityTrace::new(100, 0.8, 20.0, &mut rng);
/// trace.advance(&mut rng);
/// let online = trace.online().iter().filter(|&&b| b).count();
/// assert!(online > 50); // ~80% online in steady state
/// ```
#[derive(Debug, Clone)]
pub struct AvailabilityTrace {
    online: Vec<bool>,
    /// P(offline → online) per round.
    p_join: f64,
    /// P(online → offline) per round.
    p_leave: f64,
}

impl AvailabilityTrace {
    /// Creates a trace over `n` clients with stationary online fraction
    /// `online_fraction` and mean online session length
    /// `mean_session_rounds` (in rounds). Initial states are drawn from
    /// the stationary distribution.
    ///
    /// # Panics
    /// Panics unless `0 < online_fraction < 1` and
    /// `mean_session_rounds >= 1`.
    #[must_use]
    pub fn new<R: Rng>(
        n: usize,
        online_fraction: f64,
        mean_session_rounds: f64,
        rng: &mut R,
    ) -> Self {
        assert!(
            (0.0..1.0).contains(&online_fraction) && online_fraction > 0.0,
            "online fraction must be in (0,1)"
        );
        assert!(
            mean_session_rounds >= 1.0,
            "mean session must be >= 1 round"
        );
        // Geometric session length: mean = 1/p_leave.
        let p_leave = 1.0 / mean_session_rounds;
        // Stationary fraction f = p_join/(p_join + p_leave)
        //   → p_join = f·p_leave/(1−f).
        let p_join = (online_fraction * p_leave / (1.0 - online_fraction)).min(1.0);
        let online = (0..n).map(|_| rng.gen::<f64>() < online_fraction).collect();
        Self {
            online,
            p_join,
            p_leave,
        }
    }

    /// A trace where every client is always online (used to disable
    /// availability effects in ablations).
    #[must_use]
    pub fn always_on(n: usize) -> Self {
        Self {
            online: vec![true; n],
            p_join: 1.0,
            p_leave: 0.0,
        }
    }

    /// Number of clients tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.online.len()
    }

    /// Returns `true` when the trace tracks zero clients.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.online.is_empty()
    }

    /// Current online flags, indexed by client id.
    #[must_use]
    pub fn online(&self) -> &[bool] {
        &self.online
    }

    /// Whether client `id` is currently online.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn is_online(&self, id: usize) -> bool {
        self.online[id]
    }

    /// Advances every client's state by one round.
    pub fn advance<R: Rng>(&mut self, rng: &mut R) {
        for state in &mut self.online {
            let flip = if *state { self.p_leave } else { self.p_join };
            if rng.gen::<f64>() < flip {
                *state = !*state;
            }
        }
    }
}

/// A diurnal availability process: the Markov on/off dynamics of
/// [`AvailabilityTrace`] modulated by a day/night cycle, as observed in
/// FedScale's real client-behaviour trace (devices are predominantly
/// online over night-time charging hours).
///
/// Each client gets a random phase offset; its join probability is scaled
/// by a sinusoidal daily factor, so the online population swings between
/// roughly `peak_fraction` and `trough_fraction`.
///
/// # Example
///
/// ```
/// use gluefl_net::DiurnalAvailability;
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let mut trace = DiurnalAvailability::new(200, 0.9, 0.3, 48.0, &mut rng);
/// for _ in 0..10 { trace.advance(&mut rng); }
/// let online = trace.online().iter().filter(|&&b| b).count();
/// assert!(online > 0);
/// ```
#[derive(Debug, Clone)]
pub struct DiurnalAvailability {
    online: Vec<bool>,
    phase: Vec<f64>,
    peak: f64,
    trough: f64,
    /// Rounds per simulated day.
    period_rounds: f64,
    p_leave: f64,
    round: u64,
}

impl DiurnalAvailability {
    /// Creates a diurnal trace over `n` clients oscillating between
    /// `trough_fraction` and `peak_fraction` online with a cycle of
    /// `period_rounds` rounds.
    ///
    /// # Panics
    /// Panics unless `0 < trough <= peak < 1` and `period_rounds >= 2`.
    #[must_use]
    pub fn new<R: Rng>(
        n: usize,
        peak_fraction: f64,
        trough_fraction: f64,
        period_rounds: f64,
        rng: &mut R,
    ) -> Self {
        assert!(
            trough_fraction > 0.0 && trough_fraction <= peak_fraction && peak_fraction < 1.0,
            "need 0 < trough <= peak < 1"
        );
        assert!(period_rounds >= 2.0, "period must span at least 2 rounds");
        let mid = (peak_fraction + trough_fraction) / 2.0;
        Self {
            online: (0..n).map(|_| rng.gen::<f64>() < mid).collect(),
            // Mostly-coherent phases (a quarter-cycle of jitter): clients
            // share a dominant day/night rhythm with some spread, so the
            // population-level swing stays visible instead of cancelling.
            phase: (0..n)
                .map(|_| rng.gen_range(0.0..std::f64::consts::FRAC_PI_2))
                .collect(),
            peak: peak_fraction,
            trough: trough_fraction,
            period_rounds,
            // Responsive chain (mean session 4 rounds) so the population
            // tracks the daily cycle with little lag.
            p_leave: 0.25,
            round: 0,
        }
    }

    /// Current online flags, indexed by client id.
    #[must_use]
    pub fn online(&self) -> &[bool] {
        &self.online
    }

    /// Number of clients tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.online.len()
    }

    /// Returns `true` when no clients are tracked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.online.is_empty()
    }

    /// The target online fraction for a client with phase `phi` at the
    /// current round.
    fn target_fraction(&self, phi: f64) -> f64 {
        let t = self.round as f64 / self.period_rounds * std::f64::consts::TAU;
        let mid = (self.peak + self.trough) / 2.0;
        let amp = (self.peak - self.trough) / 2.0;
        mid + amp * (t + phi).sin()
    }

    /// Advances all clients by one round.
    pub fn advance<R: Rng>(&mut self, rng: &mut R) {
        self.round += 1;
        for i in 0..self.online.len() {
            let f = self.target_fraction(self.phase[i]);
            // Stationary fraction f requires p_join = f·p_leave/(1−f).
            let p_join = (f * self.p_leave / (1.0 - f)).min(1.0);
            let flip = if self.online[i] { self.p_leave } else { p_join };
            if rng.gen::<f64>() < flip {
                self.online[i] = !self.online[i];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn stationary_fraction_holds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut t = AvailabilityTrace::new(2_000, 0.7, 15.0, &mut rng);
        let mut total_online = 0usize;
        let rounds = 200;
        for _ in 0..rounds {
            t.advance(&mut rng);
            total_online += t.online().iter().filter(|&&b| b).count();
        }
        let frac = total_online as f64 / (2_000 * rounds) as f64;
        assert!((frac - 0.7).abs() < 0.03, "online fraction {frac}");
    }

    #[test]
    fn sessions_have_expected_length() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut t = AvailabilityTrace::new(500, 0.5, 10.0, &mut rng);
        // Measure online-run lengths of client 0 over many rounds.
        let mut lengths = Vec::new();
        let mut run = 0usize;
        for _ in 0..60_000 {
            t.advance(&mut rng);
            if t.is_online(0) {
                run += 1;
            } else if run > 0 {
                lengths.push(run);
                run = 0;
            }
        }
        let mean = lengths.iter().sum::<usize>() as f64 / lengths.len() as f64;
        assert!((mean - 10.0).abs() < 1.0, "mean session {mean}");
    }

    #[test]
    fn always_on_never_drops() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut t = AvailabilityTrace::always_on(50);
        for _ in 0..100 {
            t.advance(&mut rng);
            assert!(t.online().iter().all(|&b| b));
        }
    }

    #[test]
    #[should_panic(expected = "online fraction")]
    fn rejects_bad_fraction() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = AvailabilityTrace::new(10, 1.5, 10.0, &mut rng);
    }

    #[test]
    fn diurnal_population_oscillates() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut t = DiurnalAvailability::new(3_000, 0.85, 0.25, 50.0, &mut rng);
        // Warm into the stationary regime, then record per-round counts.
        for _ in 0..100 {
            t.advance(&mut rng);
        }
        let mut counts = Vec::new();
        for _ in 0..200 {
            t.advance(&mut rng);
            counts.push(t.online().iter().filter(|&&b| b).count() as f64 / 3_000.0);
        }
        let max = counts.iter().cloned().fold(0.0, f64::max);
        let min = counts.iter().cloned().fold(1.0, f64::min);
        assert!(
            max - min > 0.1,
            "population swing too small: {min:.3}..{max:.3}"
        );
        assert!(
            max <= 0.95 && min >= 0.1,
            "swing out of range {min:.3}..{max:.3}"
        );
    }

    #[test]
    fn diurnal_mean_between_trough_and_peak() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut t = DiurnalAvailability::new(2_000, 0.8, 0.4, 40.0, &mut rng);
        let mut total = 0usize;
        let rounds = 400;
        for _ in 0..rounds {
            t.advance(&mut rng);
            total += t.online().iter().filter(|&&b| b).count();
        }
        let mean = total as f64 / (2_000 * rounds) as f64;
        assert!((0.4..=0.8).contains(&mean), "mean online fraction {mean}");
    }

    #[test]
    #[should_panic(expected = "trough")]
    fn diurnal_rejects_inverted_fractions() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = DiurnalAvailability::new(10, 0.3, 0.8, 40.0, &mut rng);
    }
}
