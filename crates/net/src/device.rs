//! Heterogeneous device compute speeds.

use rand::Rng;

/// Models how long one local SGD step takes on each client's hardware.
///
/// FedScale's device trace assigns every client a hardware tier; we model
/// the same heterogeneity with a log-normal speed multiplier around a
/// profile-specific base cost. The cost of one local step scales linearly
/// with the number of model parameters (forward + backward are both
/// O(params·batch)).
///
/// # Example
///
/// ```
/// use gluefl_net::DeviceProfile;
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let profile = DeviceProfile::mobile();
/// let mult = profile.sample_speed(&mut rng);
/// // One step on a 5M-parameter model, batch-independent base cost:
/// let secs = profile.step_seconds(5_000_000, mult);
/// assert!(secs > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceProfile {
    /// Seconds per local step per million parameters on a median device.
    pub base_secs_per_mparam: f64,
    /// Log-normal sigma of the per-client speed multiplier.
    pub speed_sigma: f64,
    /// Clamp range for the speed multiplier.
    pub clamp: (f64, f64),
}

impl DeviceProfile {
    /// Mobile/edge device profile: a median device spends ≈60 ms per local
    /// step per million parameters (ShuffleNet-scale models take a few
    /// hundred ms per mini-batch on a phone), with ≈4× spread between the
    /// fastest and slowest quartile devices.
    #[must_use]
    pub fn mobile() -> Self {
        Self {
            base_secs_per_mparam: 0.06,
            speed_sigma: 0.5,
            clamp: (0.2, 8.0),
        }
    }

    /// Uniform fast hardware (datacenter GPUs): 3 ms per step per million
    /// parameters, almost no spread.
    #[must_use]
    pub fn uniform_fast() -> Self {
        Self {
            base_secs_per_mparam: 0.003,
            speed_sigma: 0.05,
            clamp: (0.8, 1.25),
        }
    }

    /// Samples one client's speed multiplier (1.0 = median device;
    /// larger = slower).
    #[must_use]
    pub fn sample_speed<R: Rng>(&self, rng: &mut R) -> f64 {
        let z = standard_normal(rng);
        (self.speed_sigma * z)
            .exp()
            .clamp(self.clamp.0, self.clamp.1)
    }

    /// Samples `n` speed multipliers eagerly — O(N). Retained for
    /// population statistics; the simulator samples on demand via
    /// [`SpeedCache`].
    #[must_use]
    pub fn sample_speeds<R: Rng>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample_speed(rng)).collect()
    }

    /// Client `client`'s speed multiplier, derived on demand from
    /// `(seed, client)` — the counter-based analogue of
    /// [`Self::sample_speed`], order-independent and allocation-free.
    #[must_use]
    pub fn speed_for(&self, seed: u64, client: usize) -> f64 {
        let mut rng = gluefl_tensor::rng::seeded_rng(seed, "device-speed", client as u64);
        self.sample_speed(&mut rng)
    }

    /// Seconds for one local SGD step on a model with `params` parameters
    /// for a client with the given speed multiplier.
    #[must_use]
    pub fn step_seconds(&self, params: usize, speed_multiplier: f64) -> f64 {
        self.base_secs_per_mparam * (params as f64 / 1e6) * speed_multiplier
    }
}

fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 > f64::EPSILON {
            let u2: f64 = rng.gen();
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

/// On-demand per-client speed multipliers with a cached-per-participant
/// fast path — the [`crate::LinkCache`] of device compute speeds.
#[derive(Debug, Clone)]
pub struct SpeedCache {
    profile: DeviceProfile,
    seed: u64,
    cache: std::collections::HashMap<usize, f64>,
}

impl SpeedCache {
    /// Creates an empty cache over `profile` with the given stream seed.
    #[must_use]
    pub fn new(profile: DeviceProfile, seed: u64) -> Self {
        Self {
            profile,
            seed,
            cache: std::collections::HashMap::new(),
        }
    }

    /// Client `id`'s speed multiplier — sampled on first access, cached
    /// after.
    pub fn get(&mut self, id: usize) -> f64 {
        let (profile, seed) = (self.profile, self.seed);
        *self
            .cache
            .entry(id)
            .or_insert_with(|| profile.speed_for(seed, id))
    }

    /// Number of distinct clients sampled so far.
    #[must_use]
    pub fn cached(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn speeds_are_clamped_and_centered() {
        let p = DeviceProfile::mobile();
        let mut rng = StdRng::seed_from_u64(5);
        let speeds = p.sample_speeds(&mut rng, 10_000);
        assert!(speeds.iter().all(|&s| (0.2..=8.0).contains(&s)));
        let mean_log: f64 = speeds.iter().map(|s| s.ln()).sum::<f64>() / speeds.len() as f64;
        assert!(
            mean_log.abs() < 0.05,
            "median multiplier should be ~1, log mean {mean_log}"
        );
    }

    #[test]
    fn step_time_scales_with_params() {
        let p = DeviceProfile::mobile();
        let t1 = p.step_seconds(1_000_000, 1.0);
        let t5 = p.step_seconds(5_000_000, 1.0);
        assert!((t5 / t1 - 5.0).abs() < 1e-9);
    }

    #[test]
    fn slow_devices_take_longer() {
        let p = DeviceProfile::mobile();
        assert!(p.step_seconds(1_000_000, 4.0) > p.step_seconds(1_000_000, 0.5));
    }

    #[test]
    fn speed_for_is_deterministic_and_cached() {
        let p = DeviceProfile::mobile();
        assert_eq!(p.speed_for(11, 4).to_bits(), p.speed_for(11, 4).to_bits());
        assert_ne!(p.speed_for(11, 4).to_bits(), p.speed_for(11, 5).to_bits());
        let mut cache = SpeedCache::new(p, 11);
        let s = cache.get(4);
        assert_eq!(s.to_bits(), p.speed_for(11, 4).to_bits());
        let _ = cache.get(4);
        assert_eq!(cache.cached(), 1);
    }

    #[test]
    fn fast_profile_has_low_spread() {
        let p = DeviceProfile::uniform_fast();
        let mut rng = StdRng::seed_from_u64(6);
        let speeds = p.sample_speeds(&mut rng, 1000);
        let min = speeds.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = speeds.iter().cloned().fold(0.0, f64::max);
        assert!(max / min < 1.6, "spread {}", max / min);
    }
}
