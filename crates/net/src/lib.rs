//! Network and device simulation for cross-device federated learning.
//!
//! The GlueFL paper evaluates on three network environments (Figure 9):
//! end-user edge devices (M-Lab NDT measurements, Figure 1), commercial 5G
//! (Narayanan et al. 2021), and a Google Cloud datacenter (Mok et al.
//! 2021). It also uses FedScale's client behaviour trace to model client
//! availability, and heterogeneous device speeds so that computation time
//! varies per client.
//!
//! This crate provides calibrated synthetic equivalents:
//!
//! * [`NetworkProfile`] / [`ClientLink`] — per-client download/upload
//!   bandwidth sampled from log-normal fits of the three environments'
//!   published distributions. The edge profile reproduces the paper's
//!   headline facts: ≈20% of devices have ≤10 Mbps download, and uploads
//!   are roughly 1.7× slower than downloads.
//! * [`DeviceProfile`] — per-client compute speed multipliers.
//! * [`LazyAvailability`] / [`AvailabilityTraceRef`] — a two-state on/off
//!   session process standing in for FedScale's availability trace, in a
//!   lazy counter-based form (O(1) per query, no population scan) and its
//!   eager dense reference twin.
//! * [`timing`] — byte-count → seconds conversions with a latency floor.
//!
//! Per-client randomness (links, speeds, availability) is *counter-based*:
//! client `i`'s draws derive from `(seed, i)` rather than from a shared
//! sequential stream, so any client's link, speed, or on/off trajectory can
//! be produced on demand, in any order, without materialising the other
//! `N − 1` — the key to million-client populations. [`LinkCache`] and
//! [`SpeedCache`] add a cached-per-participant fast path on top.
//!
//! # Example
//!
//! ```
//! use gluefl_net::{NetworkProfile, timing};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let link = NetworkProfile::MlabEdge.sample_link(&mut rng);
//! // Time to download a 5 MB model over this client's link:
//! let secs = timing::seconds_for_bytes(5_000_000, link.down_mbps);
//! assert!(secs > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod availability;
mod bandwidth;
mod device;
pub mod timing;

pub use availability::{AvailabilityTraceRef, DiurnalAvailability, LazyAvailability};
pub use bandwidth::{cdf, ClientLink, LinkCache, NetworkProfile};
pub use device::{DeviceProfile, SpeedCache};
