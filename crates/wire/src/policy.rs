//! The encoding policy: which value codec and which position layouts a
//! [`FrameWriter`](crate::FrameWriter) may use, and the exact byte-cost
//! model it minimizes over.
//!
//! A [`WirePolicy`] names the *menu* of layouts; the writer prices every
//! admissible layout for the frame at hand with the exact functions in
//! this module ([`delta_section_len`], [`rle_section_len_from_indices`],
//! [`rle_section_len`]) and picks the cheapest, with a deterministic
//! tie-break (bitmap ≻ u32 index list ≻ delta varints ≻ run-length).
//! Under [`WirePolicy::default`] the menu collapses to the original
//! bitmap/index pair, so every byte stream is identical to the legacy
//! `encode_*` functions — opting into the entropy layouts is always a
//! config change, never a silent format change.

use crate::codec::Codec;
use crate::frame::FrameKind;
use crate::varint::varint_len;
use gluefl_tensor::BitMask;

/// Which index-list layouts a sparse/ternary frame may use for its
/// position section.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexLayout {
    /// Fixed 4-byte little-endian `u32` indices only — the original v1
    /// layout; frame lengths match the analytic
    /// [`WireCost`](gluefl_tensor::wire::WireCost) model exactly.
    #[default]
    Legacy,
    /// Additionally consider delta-coded varint indices
    /// ([`FrameKind::SparseDelta`] / [`FrameKind::TernaryDelta`]): the
    /// first index, then each gap−1, as canonical LEB128 varints. Near
    /// the paper's 4% density this is ≈1 byte per index instead of 4.
    Entropy,
}

/// How round messages are encoded: value codec, admissible position
/// layouts, and (for lossy codecs) whether the codec residual feeds back
/// into error compensation.
///
/// Carried in `SimConfig::wire` and by the transport endpoints; both
/// sides of a connection must agree on the codec (frames self-describe,
/// so decoding never needs the policy — it only shapes what the encoder
/// emits).
///
/// [`WirePolicy::default`] reproduces the original wire format byte for
/// byte: F32 values, bitmap/u32-index positions, no run-length sections.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WirePolicy {
    /// Value codec for dense/sparse/known-mask payloads.
    pub codec: Codec,
    /// Index-list layouts admissible for sparse/ternary positions.
    pub index_layout: IndexLayout,
    /// Whether run-length sections ([`FrameKind::MaskRle`],
    /// [`FrameKind::SparseRle`], [`FrameKind::TernaryRle`]) may be used
    /// when they are strictly cheaper.
    pub rle: bool,
    /// With a lossy codec, hand each sender the *dequantized* values it
    /// actually shipped so its error-compensation bank absorbs the codec
    /// residual alongside the top-k residual. No effect under
    /// [`Codec::F32`] (the shipped values are bit-exact).
    pub quant_ec: bool,
}

impl Default for WirePolicy {
    fn default() -> Self {
        Self::legacy(Codec::F32)
    }
}

impl WirePolicy {
    /// The original v1 menu (bitmap / u32 index list, no RLE) with the
    /// given value codec — the layout every pre-entropy frame on disk
    /// and on the wire was written in.
    #[must_use]
    pub fn legacy(codec: Codec) -> Self {
        Self {
            codec,
            index_layout: IndexLayout::Legacy,
            rle: false,
            quant_ec: true,
        }
    }

    /// The full entropy menu (delta varints and run-length sections both
    /// admissible) with the given value codec.
    #[must_use]
    pub fn entropy(codec: Codec) -> Self {
        Self {
            codec,
            index_layout: IndexLayout::Entropy,
            rle: true,
            quant_ec: true,
        }
    }

    /// `true` when only v1 layouts are admissible — frame lengths are
    /// then data-independent (a pure `(kind, codec, dim, nnz)` function),
    /// which is what lets callers cache or pre-price frames.
    #[must_use]
    pub fn is_legacy(&self) -> bool {
        self.index_layout == IndexLayout::Legacy && !self.rle
    }

    /// The position layout the writer picks for a sparse frame over
    /// `indices` (strictly increasing, `< dim`): the byte-cheapest
    /// admissible kind, ties broken bitmap ≻ index ≻ delta ≻ RLE. Under
    /// [`IndexLayout::Legacy`] without RLE this is exactly the
    /// [`sparse_kind`](crate::sparse_kind) rule.
    #[must_use]
    pub fn sparse_kind(&self, dim: usize, indices: &[u32]) -> FrameKind {
        match self.position_layout(dim, indices) {
            PositionLayout::Bitmap => FrameKind::SparseBitmap,
            PositionLayout::Index => FrameKind::SparseIndex,
            PositionLayout::Delta => FrameKind::SparseDelta,
            PositionLayout::Rle => FrameKind::SparseRle,
        }
    }

    /// The position layout for a ternary frame — the same cost rule as
    /// [`WirePolicy::sparse_kind`] mapped onto the ternary kinds.
    #[must_use]
    pub fn ternary_kind(&self, dim: usize, indices: &[u32]) -> FrameKind {
        match self.position_layout(dim, indices) {
            PositionLayout::Bitmap => FrameKind::TernaryBitmap,
            PositionLayout::Index => FrameKind::TernaryIndex,
            PositionLayout::Delta => FrameKind::TernaryDelta,
            PositionLayout::Rle => FrameKind::TernaryRle,
        }
    }

    /// The layout for a mask broadcast: the v1 bitmap [`FrameKind::Mask`],
    /// or [`FrameKind::MaskRle`] when RLE is admissible and strictly
    /// cheaper.
    #[must_use]
    pub fn mask_kind(&self, mask: &BitMask) -> FrameKind {
        if self.rle && rle_section_len(mask) < mask.len().div_ceil(8) as u64 {
            FrameKind::MaskRle
        } else {
            FrameKind::Mask
        }
    }

    /// Exact position-section byte length for the sparse/ternary layout
    /// [`WirePolicy::sparse_kind`] would pick.
    #[must_use]
    pub fn position_section_len(&self, dim: usize, indices: &[u32]) -> u64 {
        match self.position_layout(dim, indices) {
            PositionLayout::Bitmap => dim.div_ceil(8) as u64,
            PositionLayout::Index => 4 * indices.len() as u64,
            PositionLayout::Delta => delta_section_len(indices),
            PositionLayout::Rle => rle_section_len_from_indices(indices),
        }
    }

    fn position_layout(&self, dim: usize, indices: &[u32]) -> PositionLayout {
        let mut best = PositionLayout::Bitmap;
        let mut best_cost = dim.div_ceil(8) as u64;
        let index_cost = 4 * indices.len() as u64;
        if index_cost < best_cost {
            (best, best_cost) = (PositionLayout::Index, index_cost);
        }
        if self.index_layout == IndexLayout::Entropy {
            let delta_cost = delta_section_len(indices);
            if delta_cost < best_cost {
                (best, best_cost) = (PositionLayout::Delta, delta_cost);
            }
        }
        if self.rle && rle_section_len_from_indices(indices) < best_cost {
            best = PositionLayout::Rle;
        }
        best
    }
}

/// A position-section layout, before mapping to sparse/ternary kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PositionLayout {
    Bitmap,
    Index,
    Delta,
    Rle,
}

/// Exact byte length of the delta-varint position section for `indices`
/// (strictly increasing): `varint(ix[0])` then `varint(gap − 1)` per
/// successor. Empty for zero indices.
#[must_use]
pub fn delta_section_len(indices: &[u32]) -> u64 {
    let mut total = 0u64;
    let mut prev: Option<u32> = None;
    for &i in indices {
        let v = match prev {
            None => u64::from(i),
            Some(p) => u64::from(i - p - 1),
        };
        total += varint_len(v) as u64;
        prev = Some(i);
    }
    total
}

/// Exact byte length of the run-length position section for `indices`
/// (strictly increasing): alternating zeros-run / ones-run varints,
/// ending with the ones-run that reaches the final index (trailing zeros
/// are implicit). Empty for zero indices.
#[must_use]
pub fn rle_section_len_from_indices(indices: &[u32]) -> u64 {
    let mut total = 0u64;
    let mut j = 0usize;
    let mut pos = 0u64;
    while j < indices.len() {
        let start = u64::from(indices[j]);
        let mut end = start + 1;
        j += 1;
        while j < indices.len() && u64::from(indices[j]) == end {
            end += 1;
            j += 1;
        }
        total += varint_len(start - pos) as u64;
        total += varint_len(end - start) as u64;
        pos = end;
    }
    total
}

/// Exact byte length of the run-length section serializing `mask` —
/// the same layout as [`rle_section_len_from_indices`] over the mask's
/// set positions.
#[must_use]
pub fn rle_section_len(mask: &BitMask) -> u64 {
    let mut total = 0u64;
    let mut pos = 0usize;
    mask.for_each_run(|start, len| {
        total += varint_len((start - pos) as u64) as u64;
        total += varint_len(len as u64) as u64;
        pos = start + len;
    });
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_the_legacy_menu() {
        let p = WirePolicy::default();
        assert_eq!(p.codec, Codec::F32);
        assert!(p.is_legacy());
        assert!(p.quant_ec);
        assert!(!WirePolicy::entropy(Codec::F32).is_legacy());
    }

    #[test]
    fn legacy_policy_matches_the_v1_sparse_rule() {
        let p = WirePolicy::default();
        for (dim, nnz) in [(1000usize, 3usize), (1000, 400), (3200, 100), (3200, 99)] {
            let step = (dim / nnz) as u32;
            let indices: Vec<u32> = (0..nnz as u32).map(|i| i * step).collect();
            assert_eq!(
                p.sparse_kind(dim, &indices),
                crate::frame::sparse_kind(dim, nnz),
                "dim={dim} nnz={nnz}"
            );
        }
    }

    #[test]
    fn entropy_policy_picks_delta_for_scattered_sparse_indices() {
        // 4% density, scattered: gaps ≈ 25 → 1-byte varints, far below
        // both the bitmap (dim/8) and the 4-byte index list.
        let dim = 100_000;
        let indices: Vec<u32> = (0..4000u32).map(|i| i * 25).collect();
        let p = WirePolicy::entropy(Codec::F32);
        assert_eq!(p.sparse_kind(dim, &indices), FrameKind::SparseDelta);
        let delta = delta_section_len(&indices);
        assert!(delta < 4 * indices.len() as u64 / 2, "delta={delta}");
    }

    #[test]
    fn rle_wins_for_blocky_masks_and_loses_for_scattered_ones() {
        let dim = 10_000;
        let blocky = BitMask::from_indices(dim, (0..dim).filter(|i| i / 500 % 2 == 0));
        let scattered = BitMask::from_indices(dim, (0..dim).step_by(2));
        let p = WirePolicy::entropy(Codec::F32);
        assert_eq!(p.mask_kind(&blocky), FrameKind::MaskRle);
        assert_eq!(p.mask_kind(&scattered), FrameKind::Mask);
        assert_eq!(WirePolicy::default().mask_kind(&blocky), FrameKind::Mask);
    }

    #[test]
    fn rle_lengths_agree_between_mask_and_index_forms() {
        let dim = 4096;
        let indices: Vec<u32> = (0..dim as u32).filter(|i| i % 37 < 11).collect();
        let mask = BitMask::from_indices(dim, indices.iter().map(|&i| i as usize));
        assert_eq!(
            rle_section_len(&mask),
            rle_section_len_from_indices(&indices)
        );
    }

    #[test]
    fn empty_sections_cost_nothing() {
        assert_eq!(delta_section_len(&[]), 0);
        assert_eq!(rle_section_len_from_indices(&[]), 0);
        assert_eq!(rle_section_len(&BitMask::zeros(100)), 0);
    }
}
