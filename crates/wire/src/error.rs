//! Typed decode errors.
//!
//! Every way a frame can be malformed maps to one [`WireError`] variant;
//! decoding never panics on untrusted bytes and never silently
//! mis-decodes (the corrupt-input suite in `tests/corrupt.rs` pins this).

/// Why a byte buffer failed to decode as a wire frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ends before the frame does.
    Truncated {
        /// Bytes the frame needs (header + declared payload).
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// The first byte is not the protocol magic.
    BadMagic(u8),
    /// Unsupported protocol version (or a set reserved bit).
    BadVersion(u8),
    /// The kind field names no known frame kind.
    BadKind(u8),
    /// The codec field names no known value codec, or a codec that the
    /// frame kind does not admit (mask and ternary frames are codec-free).
    BadCodec(u8),
    /// The CRC-16 over header and payload does not match the stored one.
    ChecksumMismatch {
        /// Checksum stored in the frame.
        stored: u16,
        /// Checksum computed over the received bytes.
        computed: u16,
    },
    /// The header's `nnz` exceeds its `dim`.
    NnzExceedsDim {
        /// Declared number of encoded values.
        nnz: usize,
        /// Declared vector dimension.
        dim: usize,
    },
    /// The header's `nnz` disagrees with the payload (a dense frame with
    /// `nnz != dim`, or a position bitmap whose popcount is not `nnz`).
    NnzMismatch {
        /// `nnz` declared in the header.
        declared: usize,
        /// Count implied by the payload.
        actual: usize,
    },
    /// The frame is longer than its header-implied size (only reported by
    /// [`crate::decode_frame`]; the streaming
    /// [`crate::decode_frame_prefix`] hands the excess back).
    TrailingBytes {
        /// Unconsumed bytes after the frame.
        extra: usize,
    },
    /// An explicit coordinate index is `>= dim`.
    IndexOutOfRange {
        /// The offending index value.
        index: u32,
        /// Declared vector dimension.
        dim: usize,
    },
    /// Explicit coordinate indices are not strictly increasing.
    IndicesNotIncreasing {
        /// Zero-based position of the first out-of-order index.
        position: usize,
    },
    /// A position or sign bitmap has set bits beyond `dim` (resp. `nnz`)
    /// in its final byte — non-canonical padding.
    NonZeroPadding,
    /// A varint in a delta or run-length position section is not the
    /// canonical (shortest) encoding of its value.
    OverlongVarint {
        /// Byte offset of the varint within the decoded frame.
        offset: usize,
    },
    /// A run-length position section contains a zero-length run where
    /// only positive runs are canonical (every ones-run, and every
    /// zeros-run after the first).
    ZeroRun {
        /// Byte offset of the offending run length within the frame.
        offset: usize,
    },
    /// A structurally valid frame whose kind is not admissible where it
    /// appeared (e.g. a mask broadcast arriving as an upload, or a split
    /// upload whose first frame is not the shared known-mask part).
    UnexpectedKind(u8),
    /// The frame's `dim` disagrees with what the receiver's state
    /// requires (e.g. a mask-aligned upload over a different model
    /// dimension than the mask both sides supposedly hold).
    DimMismatch {
        /// `dim` declared in the frame.
        declared: usize,
        /// Dimension the receiver expected.
        expected: usize,
    },
}

impl WireError {
    /// Number of distinct variants — the size of the typed
    /// decode-error table in [`crate::stats`].
    pub const STAT_KINDS: usize = 16;

    /// This variant's slot in the [`crate::stats`] decode-error table.
    #[must_use]
    pub fn stat_index(&self) -> usize {
        match self {
            Self::Truncated { .. } => 0,
            Self::BadMagic(_) => 1,
            Self::BadVersion(_) => 2,
            Self::BadKind(_) => 3,
            Self::BadCodec(_) => 4,
            Self::ChecksumMismatch { .. } => 5,
            Self::NnzExceedsDim { .. } => 6,
            Self::NnzMismatch { .. } => 7,
            Self::TrailingBytes { .. } => 8,
            Self::IndexOutOfRange { .. } => 9,
            Self::IndicesNotIncreasing { .. } => 10,
            Self::NonZeroPadding => 11,
            Self::OverlongVarint { .. } => 12,
            Self::ZeroRun { .. } => 13,
            Self::UnexpectedKind(_) => 14,
            Self::DimMismatch { .. } => 15,
        }
    }

    /// A stable snake_case name for this variant, used as the metric
    /// label value in exported decode-error counters.
    #[must_use]
    pub fn stat_name(&self) -> &'static str {
        Self::stat_name_of(self.stat_index())
    }

    /// The variant name for a [`WireError::stat_index`] slot.
    ///
    /// # Panics
    /// Panics if `index >= STAT_KINDS`.
    #[must_use]
    pub fn stat_name_of(index: usize) -> &'static str {
        [
            "truncated",
            "bad_magic",
            "bad_version",
            "bad_kind",
            "bad_codec",
            "checksum_mismatch",
            "nnz_exceeds_dim",
            "nnz_mismatch",
            "trailing_bytes",
            "index_out_of_range",
            "indices_not_increasing",
            "non_zero_padding",
            "overlong_varint",
            "zero_run",
            "unexpected_kind",
            "dim_mismatch",
        ][index]
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated { needed, got } => {
                write!(f, "truncated frame: need {needed} bytes, got {got}")
            }
            Self::BadMagic(b) => write!(f, "bad magic byte {b:#04x}"),
            Self::BadVersion(b) => write!(f, "unsupported version/flags byte {b:#04x}"),
            Self::BadKind(k) => write!(f, "unknown frame kind {k}"),
            Self::BadCodec(c) => write!(f, "unknown or inadmissible value codec {c}"),
            Self::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "checksum mismatch: stored {stored:#06x}, computed {computed:#06x}"
                )
            }
            Self::NnzExceedsDim { nnz, dim } => write!(f, "nnz {nnz} exceeds dim {dim}"),
            Self::NnzMismatch { declared, actual } => {
                write!(
                    f,
                    "nnz mismatch: header says {declared}, payload implies {actual}"
                )
            }
            Self::TrailingBytes { extra } => write!(f, "{extra} trailing bytes after frame"),
            Self::IndexOutOfRange { index, dim } => {
                write!(f, "index {index} out of range for dim {dim}")
            }
            Self::IndicesNotIncreasing { position } => {
                write!(f, "indices not strictly increasing at position {position}")
            }
            Self::NonZeroPadding => write!(f, "non-zero padding bits in a bitmap tail"),
            Self::OverlongVarint { offset } => {
                write!(f, "non-canonical (overlong) varint at byte {offset}")
            }
            Self::ZeroRun { offset } => {
                write!(
                    f,
                    "zero-length run at byte {offset} in a run-length section"
                )
            }
            Self::UnexpectedKind(k) => {
                write!(f, "frame kind {k} is not admissible in this position")
            }
            Self::DimMismatch { declared, expected } => {
                write!(f, "frame dim {declared} disagrees with expected {expected}")
            }
        }
    }
}

impl std::error::Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_defect() {
        let cases: [(WireError, &str); 7] = [
            (WireError::Truncated { needed: 20, got: 3 }, "truncated"),
            (WireError::BadMagic(0x00), "magic"),
            (
                WireError::ChecksumMismatch {
                    stored: 1,
                    computed: 2,
                },
                "checksum",
            ),
            (
                WireError::IndexOutOfRange { index: 9, dim: 4 },
                "out of range",
            ),
            (WireError::NonZeroPadding, "padding"),
            (WireError::OverlongVarint { offset: 17 }, "overlong"),
            (WireError::ZeroRun { offset: 21 }, "zero-length run"),
        ];
        for (e, needle) in cases {
            assert!(e.to_string().contains(needle), "{e}");
        }
    }

    #[test]
    fn is_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(WireError::NonZeroPadding);
        assert!(!e.to_string().is_empty());
    }
}
