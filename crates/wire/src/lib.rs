//! `gluefl-wire`: the framed, checksummed binary wire protocol for GlueFL
//! round messages.
//!
//! The rest of the workspace *accounts* for bandwidth with the analytic
//! [`gluefl_tensor::wire::WireCost`] model; this crate actually
//! serializes the bytes. Every message of the round protocol — the dense
//! model broadcast, the shared-mask broadcast, and the dense / sparse /
//! mask-aligned / ternary update uploads — is one [`frame`]: a 16-byte
//! header (magic, version, kind, codec, round, `dim`, `nnz`,
//! CRC-16/CCITT-FALSE) followed by a payload whose length the header
//! implies. See [`frame`] for the byte-level layout table.
//!
//! What travels is shaped by a [`WirePolicy`] — the value codec, the
//! admissible position layouts, and (for lossy codecs) whether codec
//! residual feeds back into error compensation — and written through a
//! single [`FrameWriter`] entry point per message kind. The default
//! policy reproduces the original v1 format byte for byte; opting into
//! the **entropy layouts** ([`IndexLayout::Entropy`], RLE) lets the
//! writer also price delta-coded varint index lists and run-length mask
//! sections and pick the cheapest layout per frame in exact bytes.
//!
//! Three pluggable **value codecs** ([`Codec`]) decide how `f32`
//! parameter values travel:
//!
//! * [`Codec::F32`] — 4 B/value, bit-exact; with it, every frame's length
//!   equals the analytic `WireCost` total (property-tested), so the
//!   simulator's measured bytes and the ledger's analytic bytes coincide.
//! * [`Codec::F16`] — 2 B/value, round-to-nearest-even half precision.
//! * [`Codec::QuantU8`] — 1 B/value plus one `f32` scale per 64-value
//!   block, with deterministic [`Rounding::Nearest`] or unbiased,
//!   seed-deterministic [`Rounding::Stochastic`] rounding (the simulator
//!   derives the seed from `(master seed, round, client)`, so serial and
//!   parallel runs stay bit-identical).
//!
//! **Encoding** appends to a caller-supplied `Vec<u8>` — the simulator
//! threads pooled byte arenas through, so steady-state encoding performs
//! no heap allocation. **Decoding** ([`decode_frame`] /
//! [`decode_frame_prefix`]) is zero-copy over `&[u8]`: the returned
//! [`Frame`] borrows its position and value sections, and every
//! malformation (truncation, checksum damage, `nnz`/`dim` inconsistency,
//! out-of-range or unsorted indices, non-canonical padding) is a typed
//! [`WireError`] — untrusted input never panics.
//!
//! # Example
//!
//! ```
//! use gluefl_wire::{decode_frame, Codec, FrameWriter, Rounding, WirePolicy};
//!
//! // A sparse update: 3 of 1000 coordinates, legacy (v1) layouts.
//! let writer = FrameWriter::new(WirePolicy::legacy(Codec::F32));
//! let mut buf = Vec::new();
//! let len = writer.sparse(
//!     &mut buf, /* round */ 12, Rounding::Nearest,
//!     1000, &[7, 400, 999], &[0.5, -1.0, 2.0],
//! );
//! // Legacy F32 frames match the analytic cost model exactly.
//! assert_eq!(len as u64, gluefl_tensor::WireCost::sparse(1000, 3).total_bytes());
//! // The entropy menu prices delta varints and RLE too, and only wins bytes.
//! let entropy = FrameWriter::new(WirePolicy::entropy(Codec::F32));
//! assert!(entropy.sparse_len(1000, &[7, 400, 999]) <= len as u64);
//!
//! let frame = decode_frame(&buf).unwrap();
//! let (mut ix, mut vals) = (Vec::new(), Vec::new());
//! frame.indices_into(&mut ix);
//! frame.values_into(&mut vals);
//! assert_eq!(ix, vec![7, 400, 999]);
//! assert_eq!(vals, vec![0.5, -1.0, 2.0]);
//!
//! // Corruption is a typed error, never a panic.
//! buf[20] ^= 0xFF;
//! assert!(decode_frame(&buf).is_err());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod crc;
pub mod error;
pub mod frame;
pub mod policy;
pub mod stats;
mod varint;

pub use codec::{Codec, Rounding, QUANT_BLOCK};
pub use error::WireError;
pub use frame::{
    decode_frame, decode_frame_prefix, frame_len, frame_len_from_header, sparse_kind, ternary_kind,
    Frame, FrameKind, FrameWriter, HEADER_BYTES, MAGIC, VERSION, VERSION_ENTROPY,
};
pub use policy::{
    delta_section_len, rle_section_len, rle_section_len_from_indices, IndexLayout, WirePolicy,
};
