//! Frame layout, encoders, and the validating zero-copy decoder.
//!
//! Every round message is one *frame*: a fixed 16-byte header followed by
//! a payload whose exact length is implied by the header. All multi-byte
//! fields are little-endian:
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------------
//!      0     1  magic (0xA7)
//!      1     1  packed: [7:6] version · [5:3] kind[2:0] · [2:1] codec ·
//!               [0] version 1: reserved (0) · version 2: kind[3]
//!      2     4  round id (u32)
//!      6     4  dim — parameter-vector dimension (u32)
//!     10     4  nnz — encoded value count (u32)
//!     14     2  CRC-16/CCITT-FALSE over bytes 0..14 and the payload
//! ------  ----  -----------------------------------------------------
//!     16     …  payload: [positions][values], layouts per kind below
//! ```
//!
//! | kind            | id | positions              | values                      |
//! |-----------------|----|------------------------|-----------------------------|
//! | `Dense`         | 0  | —                      | `dim` codec values          |
//! | `SparseBitmap`  | 1  | `ceil(dim/8)` bitmap   | `nnz` codec values          |
//! | `SparseIndex`   | 2  | `nnz` sorted `u32`s (`4·nnz` B) | `nnz` codec values |
//! | `KnownMask`     | 3  | — (receiver holds `M`) | `nnz` codec values          |
//! | `Mask`          | 4  | `ceil(dim/8)` bitmap   | —                           |
//! | `TernaryBitmap` | 5  | `ceil(dim/8)` bitmap   | `f32 µ` + `ceil(nnz/8)` signs |
//! | `TernaryIndex`  | 6  | `nnz` sorted `u32`s (`4·nnz` B) | `f32 µ` + `ceil(nnz/8)` signs |
//! | `SparseDelta`   | 7  | `nnz` delta varints    | `nnz` codec values          |
//! | `MaskRle`       | 8  | run-length varints     | —                           |
//! | `SparseRle`     | 9  | run-length varints     | `nnz` codec values          |
//! | `TernaryDelta`  | 10 | `nnz` delta varints    | `f32 µ` + `ceil(nnz/8)` signs |
//! | `TernaryRle`    | 11 | run-length varints     | `f32 µ` + `ceil(nnz/8)` signs |
//!
//! Kinds 0–6 are the original **version-1** layouts (reserved bit zero,
//! byte-for-byte unchanged). Kinds 7–11 are the **version-2** entropy
//! layouts: the version field reads 2 and the former reserved bit
//! carries the kind's fourth bit, so every v1 decoder cleanly rejects
//! them as [`WireError::BadVersion`] instead of mis-reading. A v2 frame
//! declaring a v1 kind is non-canonical and also rejected.
//!
//! The two entropy position sections are *self-delimiting* (the decoder
//! walks their canonical LEB128 varints to find the frame end — see
//! [`FrameKind::SparseDelta`] and [`FrameKind::MaskRle`] for the exact
//! grammar), which is why [`frame_len`] only prices v1 kinds and the
//! [`FrameWriter`] length predictors take the actual indices.
//!
//! A [`WirePolicy::legacy`] writer picks bitmap vs. index-list
//! positions by exactly the
//! [`WireCost::sparse`](gluefl_tensor::wire::WireCost::sparse) rule (`ceil(dim/8) ≤ 4·nnz` → bitmap,
//! ties included), so with the [`Codec::F32`] value codec every frame's
//! encoded length equals the corresponding analytic
//! [`gluefl_tensor::wire::WireCost`] total — the property test suite
//! pins this across adversarial `dim`/`nnz`. The [`FrameWriter`]
//! generalizes the rule: it prices every layout its
//! [`WirePolicy`] admits in exact bytes and picks the
//! cheapest (ties: bitmap ≻ index ≻ delta ≻ RLE).
//!
//! Decoding borrows the payload (`&[u8]`, zero-copy) and validates
//! eagerly: magic/version/kind/codec, the checksum, section lengths,
//! `nnz`/`dim` consistency (dense frames, bitmap popcounts), strict index
//! monotonicity and range, canonical zero padding, canonical varints, and
//! positive run lengths. Every failure is a typed [`WireError`];
//! untrusted input never panics.

use crate::codec::{decode_values_into, encode_values, Codec, Rounding};
use crate::crc::{crc16, crc16_update};
use crate::error::WireError;
use crate::policy::WirePolicy;
use crate::varint::{push_varint, read_varint};
use gluefl_tensor::BitMask;

/// First byte of every frame.
pub const MAGIC: u8 = 0xA7;

/// Protocol version of the original fixed-layout kinds (0–6).
pub const VERSION: u8 = 1;

/// Protocol version of the entropy-layout kinds (7–11), whose packed
/// header byte uses the former reserved bit as the kind's fourth bit.
pub const VERSION_ENTROPY: u8 = 2;

/// Fixed frame header length in bytes. Kept identical to the analytic
/// cost model's [`gluefl_tensor::wire::HEADER_BYTES`] (pinned by a test)
/// so measured frame lengths and [`gluefl_tensor::wire::WireCost`] totals
/// are directly comparable.
pub const HEADER_BYTES: usize = 16;

/// Payload shape of a frame (the header's kind field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameKind {
    /// Dense values over every coordinate (model broadcast, FedAvg
    /// upload); `nnz == dim`.
    Dense,
    /// Sparse values with a `dim`-bit position bitmap.
    SparseBitmap,
    /// Sparse values with explicit sorted `u32` positions.
    SparseIndex,
    /// Values aligned to a mask the receiver already holds — no position
    /// bytes travel (GlueFL's shared part, APF's active set).
    KnownMask,
    /// A mask broadcast: positions only, no values (GlueFL's `M_t`).
    Mask,
    /// Ternary-quantized sparse values (`sign·µ`) with bitmap positions.
    TernaryBitmap,
    /// Ternary-quantized sparse values with explicit positions.
    TernaryIndex,
    /// Sparse values with delta-coded varint positions (v2): the first
    /// index, then each gap−1, as canonical LEB128 varints — strictly
    /// increasing by construction, so only the running index needs a
    /// range check. Empty section when `nnz = 0`.
    SparseDelta,
    /// A mask broadcast with a run-length position section (v2):
    /// alternating zeros-run / ones-run varints starting with the
    /// (possibly zero) leading zeros-run, ending with the ones-run that
    /// brings the total set count to `nnz` — trailing zeros are implicit
    /// and must be absent. Every ones-run, and every zeros-run after the
    /// first, must be positive ([`WireError::ZeroRun`] otherwise). Empty
    /// section when `nnz = 0`.
    MaskRle,
    /// Sparse values with run-length positions (v2) — the
    /// [`FrameKind::MaskRle`] section grammar as a sparse frame's
    /// position section.
    SparseRle,
    /// Ternary-quantized sparse values with delta-coded varint
    /// positions (v2).
    TernaryDelta,
    /// Ternary-quantized sparse values with run-length positions (v2).
    TernaryRle,
}

impl FrameKind {
    /// The kind's wire id (the 3-bit field of the packed header byte) —
    /// also what [`WireError::UnexpectedKind`] reports when a valid
    /// frame shows up somewhere its kind is not admissible.
    #[must_use]
    pub fn id(self) -> u8 {
        match self {
            FrameKind::Dense => 0,
            FrameKind::SparseBitmap => 1,
            FrameKind::SparseIndex => 2,
            FrameKind::KnownMask => 3,
            FrameKind::Mask => 4,
            FrameKind::TernaryBitmap => 5,
            FrameKind::TernaryIndex => 6,
            FrameKind::SparseDelta => 7,
            FrameKind::MaskRle => 8,
            FrameKind::SparseRle => 9,
            FrameKind::TernaryDelta => 10,
            FrameKind::TernaryRle => 11,
        }
    }

    pub(crate) fn from_id(id: u8) -> Result<Self, WireError> {
        match id {
            0 => Ok(FrameKind::Dense),
            1 => Ok(FrameKind::SparseBitmap),
            2 => Ok(FrameKind::SparseIndex),
            3 => Ok(FrameKind::KnownMask),
            4 => Ok(FrameKind::Mask),
            5 => Ok(FrameKind::TernaryBitmap),
            6 => Ok(FrameKind::TernaryIndex),
            7 => Ok(FrameKind::SparseDelta),
            8 => Ok(FrameKind::MaskRle),
            9 => Ok(FrameKind::SparseRle),
            10 => Ok(FrameKind::TernaryDelta),
            11 => Ok(FrameKind::TernaryRle),
            other => Err(WireError::BadKind(other)),
        }
    }

    /// Whether this kind carries codec-encoded values (mask and ternary
    /// frames have fixed value layouts and must declare [`Codec::F32`]).
    fn uses_value_codec(self) -> bool {
        matches!(
            self,
            FrameKind::Dense
                | FrameKind::SparseBitmap
                | FrameKind::SparseIndex
                | FrameKind::KnownMask
                | FrameKind::SparseDelta
                | FrameKind::SparseRle
        )
    }

    /// Whether this kind's position section is self-delimiting varints
    /// (frame length depends on the data, not just the header).
    fn is_entropy(self) -> bool {
        self.id() > 6
    }

    /// A stable snake_case name, used as the metric label value in
    /// exported frame counters ([`crate::stats`]).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FrameKind::Dense => "dense",
            FrameKind::SparseBitmap => "sparse_bitmap",
            FrameKind::SparseIndex => "sparse_index",
            FrameKind::KnownMask => "known_mask",
            FrameKind::Mask => "mask",
            FrameKind::TernaryBitmap => "ternary_bitmap",
            FrameKind::TernaryIndex => "ternary_index",
            FrameKind::SparseDelta => "sparse_delta",
            FrameKind::MaskRle => "mask_rle",
            FrameKind::SparseRle => "sparse_rle",
            FrameKind::TernaryDelta => "ternary_delta",
            FrameKind::TernaryRle => "ternary_rle",
        }
    }

    /// The wire version this kind travels under (`"v1"` for the
    /// original fixed layouts, `"v2"` for the entropy layouts).
    #[must_use]
    pub fn version_name(self) -> &'static str {
        if self.is_entropy() {
            "v2"
        } else {
            "v1"
        }
    }
}

/// The packed header byte for `(kind, codec)`: v1 kinds keep the
/// original `[version=1 · kind · codec · 0]` layout; v2 kinds read
/// version 2 and spill the kind's fourth bit into the former reserved
/// bit.
fn packed_byte(kind: FrameKind, codec: Codec) -> u8 {
    let id = kind.id();
    if id <= 6 {
        (VERSION << 6) | (id << 3) | (codec.id() << 1)
    } else {
        (VERSION_ENTROPY << 6) | ((id & 0x07) << 3) | (codec.id() << 1) | (id >> 3)
    }
}

/// Parses the packed header byte back into `(kind, codec)`.
///
/// A v1 byte with the reserved bit set, a v2 byte declaring a v1 kind
/// (non-canonical), or any other version is [`WireError::BadVersion`].
fn unpack_byte(packed: u8) -> Result<(FrameKind, Codec), WireError> {
    let kind_id = match packed >> 6 {
        VERSION => {
            if packed & 1 != 0 {
                return Err(WireError::BadVersion(packed));
            }
            let id = (packed >> 3) & 0x07;
            if id > 6 {
                // The 3-bit field's last value is only reachable through
                // the v2 encoding.
                return Err(WireError::BadKind(id));
            }
            id
        }
        VERSION_ENTROPY => {
            let id = ((packed & 1) << 3) | ((packed >> 3) & 0x07);
            if id <= 6 {
                return Err(WireError::BadVersion(packed));
            }
            id
        }
        _ => return Err(WireError::BadVersion(packed)),
    };
    let kind = FrameKind::from_id(kind_id)?;
    let codec = Codec::from_id((packed >> 1) & 0x03)?;
    if !kind.uses_value_codec() && codec != Codec::F32 {
        // Mask/ternary frames have fixed layouts; a non-zero codec field
        // is non-canonical.
        return Err(WireError::BadCodec(codec.id()));
    }
    Ok((kind, codec))
}

/// Writes the 16-byte header with a zeroed checksum; returns its offset.
fn begin_frame(
    out: &mut Vec<u8>,
    kind: FrameKind,
    codec: Codec,
    round: u32,
    dim: usize,
    nnz: usize,
) -> usize {
    let dim32 = u32::try_from(dim).expect("dim exceeds u32 range");
    let nnz32 = u32::try_from(nnz).expect("nnz exceeds u32 range");
    assert!(nnz <= dim, "nnz {nnz} exceeds dim {dim}");
    crate::stats::record_encoded(kind, codec);
    let start = out.len();
    out.reserve(HEADER_BYTES);
    out.push(MAGIC);
    out.push(packed_byte(kind, codec));
    out.extend_from_slice(&round.to_le_bytes());
    out.extend_from_slice(&dim32.to_le_bytes());
    out.extend_from_slice(&nnz32.to_le_bytes());
    out.extend_from_slice(&[0u8; 2]); // checksum placeholder
    start
}

/// Stamps the checksum over the finished frame starting at `start`.
fn finish_frame(out: &mut [u8], start: usize) -> usize {
    let crc = crc16_update(crc16(&out[start..start + 14]), &out[start + HEADER_BYTES..]);
    out[start + 14..start + 16].copy_from_slice(&crc.to_le_bytes());
    out.len() - start
}

/// The single encoding entry point: one method per round-message kind,
/// with the position layout chosen per frame by the carried
/// [`WirePolicy`]'s exact byte-cost rule.
///
/// The writer is a trivial `Copy` wrapper — construct one wherever a
/// policy is in scope. Every `*_len` predictor returns *exactly* what
/// the matching encode method will append (property-tested), so senders
/// can price an upload before encoding it; the entropy layouts make
/// lengths data-dependent, which is why the sparse/ternary predictors
/// take the actual indices.
///
/// # Example
///
/// ```
/// use gluefl_wire::{decode_frame, Codec, FrameKind, FrameWriter, Rounding, WirePolicy};
///
/// let writer = FrameWriter::new(WirePolicy::entropy(Codec::F32));
/// let (indices, values) = ([7u32, 9, 400], [0.5f32, -1.0, 2.0]);
/// let mut buf = Vec::new();
/// let len = writer.sparse(&mut buf, 12, Rounding::Nearest, 100_000, &indices, &values);
/// assert_eq!(len as u64, writer.sparse_len(100_000, &indices));
///
/// let frame = decode_frame(&buf).unwrap();
/// assert_eq!(frame.kind, FrameKind::SparseDelta); // varints beat 4-byte indices
/// let mut ix = Vec::new();
/// frame.indices_into(&mut ix);
/// assert_eq!(ix, indices);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct FrameWriter {
    policy: WirePolicy,
}

impl FrameWriter {
    /// A writer emitting frames under `policy`.
    #[must_use]
    pub fn new(policy: WirePolicy) -> Self {
        Self { policy }
    }

    /// The policy this writer encodes under.
    #[must_use]
    pub fn policy(&self) -> WirePolicy {
        self.policy
    }

    /// Encodes a dense frame over all of `values` (e.g. a model
    /// broadcast). Returns the frame length in bytes (appended to `out`).
    ///
    /// # Panics
    /// Panics if `values.len()` exceeds `u32::MAX`.
    pub fn dense(
        &self,
        out: &mut Vec<u8>,
        round: u32,
        rounding: Rounding,
        values: &[f32],
    ) -> usize {
        let start = begin_frame(
            out,
            FrameKind::Dense,
            self.policy.codec,
            round,
            values.len(),
            values.len(),
        );
        encode_values(out, self.policy.codec, rounding, values);
        finish_frame(out, start)
    }

    /// Encodes a sparse frame: `values[j]` lives at coordinate
    /// `indices[j]` of a `dim`-vector, positions in the cheapest layout
    /// the policy admits ([`WirePolicy::sparse_kind`]). Returns the frame
    /// length in bytes.
    ///
    /// # Panics
    /// Panics if the indices are unsorted, repeated, or `>= dim`, or if
    /// `indices.len() != values.len()`.
    pub fn sparse(
        &self,
        out: &mut Vec<u8>,
        round: u32,
        rounding: Rounding,
        dim: usize,
        indices: &[u32],
        values: &[f32],
    ) -> usize {
        assert_eq!(
            indices.len(),
            values.len(),
            "indices/values length mismatch"
        );
        assert_sorted_in_range(indices, dim);
        let kind = self.policy.sparse_kind(dim, indices);
        let start = begin_frame(out, kind, self.policy.codec, round, dim, indices.len());
        extend_positions(out, kind, dim, indices);
        encode_values(out, self.policy.codec, rounding, values);
        finish_frame(out, start)
    }

    /// Encodes a known-mask frame: `values` aligned (in increasing
    /// position order) to a mask the receiver already holds, so no
    /// position bytes travel. Returns the frame length in bytes.
    pub fn known_mask(
        &self,
        out: &mut Vec<u8>,
        round: u32,
        rounding: Rounding,
        dim: usize,
        values: &[f32],
    ) -> usize {
        let start = begin_frame(
            out,
            FrameKind::KnownMask,
            self.policy.codec,
            round,
            dim,
            values.len(),
        );
        encode_values(out, self.policy.codec, rounding, values);
        finish_frame(out, start)
    }

    /// Encodes a mask broadcast frame (positions only): the v1 bitmap,
    /// or a run-length section when the policy admits RLE and it is
    /// strictly smaller ([`WirePolicy::mask_kind`]). Returns the frame
    /// length in bytes.
    pub fn mask(&self, out: &mut Vec<u8>, round: u32, mask: &BitMask) -> usize {
        let kind = self.policy.mask_kind(mask);
        let start = begin_frame(out, kind, Codec::F32, round, mask.len(), mask.count_ones());
        match kind {
            FrameKind::Mask => mask.extend_le_bytes(out),
            FrameKind::MaskRle => extend_rle_from_mask(out, mask),
            _ => unreachable!("mask_kind returns a mask kind"),
        }
        finish_frame(out, start)
    }

    /// Encodes a ternary-quantized sparse frame: one magnitude `mu` plus
    /// a sign bit per kept coordinate (`true` = `+mu`), positions in the
    /// cheapest admissible layout ([`WirePolicy::ternary_kind`]). Returns
    /// the frame length in bytes.
    ///
    /// # Panics
    /// Panics if the indices are unsorted, repeated, or `>= dim`, or if
    /// `indices.len() != signs.len()`.
    pub fn ternary(
        &self,
        out: &mut Vec<u8>,
        round: u32,
        dim: usize,
        mu: f32,
        indices: &[u32],
        signs: &[bool],
    ) -> usize {
        assert_eq!(indices.len(), signs.len(), "indices/signs length mismatch");
        assert_sorted_in_range(indices, dim);
        let nnz = indices.len();
        let kind = self.policy.ternary_kind(dim, indices);
        let start = begin_frame(out, kind, Codec::F32, round, dim, nnz);
        extend_positions(out, kind, dim, indices);
        out.extend_from_slice(&mu.to_le_bytes());
        let sign_start = out.len();
        out.resize(sign_start + nnz.div_ceil(8), 0);
        for (j, &positive) in signs.iter().enumerate() {
            if positive {
                out[sign_start + j / 8] |= 1 << (j % 8);
            }
        }
        finish_frame(out, start)
    }

    /// Exact byte length [`FrameWriter::dense`] will emit for a
    /// `dim`-vector.
    #[must_use]
    pub fn dense_len(&self, dim: usize) -> u64 {
        HEADER_BYTES as u64 + self.policy.codec.value_section_len(dim) as u64
    }

    /// Exact byte length [`FrameWriter::sparse`] will emit for these
    /// indices.
    #[must_use]
    pub fn sparse_len(&self, dim: usize, indices: &[u32]) -> u64 {
        HEADER_BYTES as u64
            + self.policy.position_section_len(dim, indices)
            + self.policy.codec.value_section_len(indices.len()) as u64
    }

    /// Exact byte length [`FrameWriter::known_mask`] will emit for `nnz`
    /// values.
    #[must_use]
    pub fn known_mask_len(&self, nnz: usize) -> u64 {
        HEADER_BYTES as u64 + self.policy.codec.value_section_len(nnz) as u64
    }

    /// Exact byte length [`FrameWriter::mask`] will emit for `mask`.
    #[must_use]
    pub fn mask_len(&self, mask: &BitMask) -> u64 {
        let positions = match self.policy.mask_kind(mask) {
            FrameKind::MaskRle => crate::policy::rle_section_len(mask),
            _ => mask.len().div_ceil(8) as u64,
        };
        HEADER_BYTES as u64 + positions
    }

    /// Exact byte length [`FrameWriter::ternary`] will emit for these
    /// indices.
    #[must_use]
    pub fn ternary_len(&self, dim: usize, indices: &[u32]) -> u64 {
        HEADER_BYTES as u64
            + self.policy.position_section_len(dim, indices)
            + 4
            + (indices.len() as u64).div_ceil(8)
    }
}

fn assert_sorted_in_range(indices: &[u32], dim: usize) {
    for (j, &i) in indices.iter().enumerate() {
        assert!((i as usize) < dim, "index {i} out of range {dim}");
        if j > 0 {
            assert!(indices[j - 1] < i, "indices must be strictly increasing");
        }
    }
}

fn extend_bitmap_from_indices(out: &mut Vec<u8>, bitmap_len: usize, indices: &[u32]) {
    let start = out.len();
    out.resize(start + bitmap_len, 0);
    for &i in indices {
        out[start + (i as usize) / 8] |= 1 << (i % 8);
    }
}

fn extend_index_list(out: &mut Vec<u8>, indices: &[u32]) {
    let start = out.len();
    out.resize(start + 4 * indices.len(), 0);
    for (chunk, i) in out[start..].chunks_exact_mut(4).zip(indices) {
        chunk.copy_from_slice(&i.to_le_bytes());
    }
}

/// Writes the position section matching `kind` for sorted `indices`.
fn extend_positions(out: &mut Vec<u8>, kind: FrameKind, dim: usize, indices: &[u32]) {
    match kind {
        FrameKind::SparseBitmap | FrameKind::TernaryBitmap => {
            extend_bitmap_from_indices(out, dim.div_ceil(8), indices);
        }
        FrameKind::SparseIndex | FrameKind::TernaryIndex => extend_index_list(out, indices),
        FrameKind::SparseDelta | FrameKind::TernaryDelta => {
            extend_delta_from_indices(out, indices);
        }
        FrameKind::SparseRle | FrameKind::TernaryRle => extend_rle_from_indices(out, indices),
        _ => unreachable!("{kind:?} has no sparse position section"),
    }
}

fn extend_delta_from_indices(out: &mut Vec<u8>, indices: &[u32]) {
    let mut prev: Option<u32> = None;
    for &i in indices {
        let v = match prev {
            None => u64::from(i),
            Some(p) => u64::from(i - p - 1),
        };
        push_varint(out, v);
        prev = Some(i);
    }
}

fn extend_rle_from_indices(out: &mut Vec<u8>, indices: &[u32]) {
    let mut j = 0usize;
    let mut pos = 0u64;
    while j < indices.len() {
        let start = u64::from(indices[j]);
        let mut end = start + 1;
        j += 1;
        while j < indices.len() && u64::from(indices[j]) == end {
            end += 1;
            j += 1;
        }
        push_varint(out, start - pos);
        push_varint(out, end - start);
        pos = end;
    }
}

fn extend_rle_from_mask(out: &mut Vec<u8>, mask: &BitMask) {
    let mut pos = 0usize;
    mask.for_each_run(|start, len| {
        push_varint(out, (start - pos) as u64);
        push_varint(out, len as u64);
        pos = start + len;
    });
}

/// A decoded frame: parsed header fields plus borrowed (zero-copy)
/// position and value sections. Produced by [`decode_frame`] /
/// [`decode_frame_prefix`], which validate everything up front — the
/// accessor methods only panic when called on an inapplicable kind.
#[derive(Debug, Clone, Copy)]
pub struct Frame<'a> {
    /// Payload shape.
    pub kind: FrameKind,
    /// Value codec (always [`Codec::F32`] for mask/ternary kinds).
    pub codec: Codec,
    /// Round id from the header.
    pub round: u32,
    /// Parameter-vector dimension.
    pub dim: usize,
    /// Number of encoded values (equals `dim` for dense frames; bitmap
    /// popcount for mask frames).
    pub nnz: usize,
    positions: &'a [u8],
    values: &'a [u8],
}

/// Exact encoded length in bytes of a **v1** frame with the given header
/// fields (header + positions + values). v1 frame lengths depend only on
/// `(kind, codec, dim, nnz)` — never on the values themselves — which is
/// what lets a sender (or a scheduler) price an upload *before* encoding
/// it. The v2 entropy kinds are data-dependent; price those with the
/// [`FrameWriter`] predictors ([`FrameWriter::sparse_len`],
/// [`FrameWriter::mask_len`], [`FrameWriter::ternary_len`]), which take
/// the actual indices.
///
/// # Panics
/// Panics for the entropy kinds (`SparseDelta`, `MaskRle`, `SparseRle`,
/// `TernaryDelta`, `TernaryRle`), whose lengths the header does not
/// determine.
#[must_use]
pub fn frame_len(kind: FrameKind, codec: Codec, dim: usize, nnz: usize) -> u64 {
    assert!(
        !kind.is_entropy(),
        "{kind:?} frame length is data-dependent; use the FrameWriter predictors"
    );
    let (positions, values) = section_lens(kind, codec, dim, nnz);
    HEADER_BYTES as u64 + positions + values
}

/// The position encoding a [`WirePolicy::legacy`] writer picks for
/// `(dim, nnz)`:
/// bitmap when `ceil(dim/8) ≤ 4·nnz` (ties included — the
/// [`WireCost::sparse`](gluefl_tensor::wire::WireCost::sparse) rule),
/// index list otherwise.
#[must_use]
pub fn sparse_kind(dim: usize, nnz: usize) -> FrameKind {
    if dim.div_ceil(8) <= 4 * nnz {
        FrameKind::SparseBitmap
    } else {
        FrameKind::SparseIndex
    }
}

/// The position encoding a [`WirePolicy::legacy`] writer picks for a
/// ternary frame over `(dim, nnz)` — the same bitmap-vs-index rule as
/// [`sparse_kind`].
#[must_use]
pub fn ternary_kind(dim: usize, nnz: usize) -> FrameKind {
    if dim.div_ceil(8) <= 4 * nnz {
        FrameKind::TernaryBitmap
    } else {
        FrameKind::TernaryIndex
    }
}

/// Parses a frame header and returns the full frame length it implies
/// (header + payload) — the streaming-read primitive: a socket reader
/// peeks the fixed-size header, learns exactly how many bytes the frame
/// occupies, and reads the remainder without any buffering heuristics.
/// For the v2 entropy kinds the position section is self-delimiting, so
/// the scan needs the section bytes too: pass whatever prefix has
/// arrived and retry with more bytes on [`WireError::Truncated`].
/// Performs the same validation as [`decode_frame_prefix`] up to (but
/// not including) the checksum, which covers the payload and can only be
/// verified once it has all arrived.
///
/// # Errors
/// [`WireError::Truncated`] when `header` is shorter than
/// [`HEADER_BYTES`] (or, for entropy kinds, than the position section),
/// plus any header/position malformation `decode_frame_prefix` would
/// report (bad magic/version/kind/codec, `nnz > dim`, dense `nnz != dim`,
/// overlong varints, zero runs, out-of-range positions).
pub fn frame_len_from_header(header: &[u8]) -> Result<u64, WireError> {
    let parsed = parse_header(header)?;
    let positions_len = positions_len(header, &parsed)?;
    let values_len = values_len(parsed.kind, parsed.codec, parsed.dim, parsed.nnz);
    Ok(HEADER_BYTES as u64 + positions_len as u64 + values_len)
}

/// The validated fixed header fields, before any payload inspection.
struct ParsedHeader {
    kind: FrameKind,
    codec: Codec,
    round: u32,
    dim: usize,
    nnz: usize,
    stored_crc: u16,
}

/// Validates the 16 fixed header bytes (everything `decode_frame_prefix`
/// checks before looking at the payload).
fn parse_header(buf: &[u8]) -> Result<ParsedHeader, WireError> {
    if buf.len() < HEADER_BYTES {
        return Err(WireError::Truncated {
            needed: HEADER_BYTES,
            got: buf.len(),
        });
    }
    if buf[0] != MAGIC {
        return Err(WireError::BadMagic(buf[0]));
    }
    let (kind, codec) = unpack_byte(buf[1])?;
    let round = u32::from_le_bytes(buf[2..6].try_into().expect("4 bytes"));
    let dim = u32::from_le_bytes(buf[6..10].try_into().expect("4 bytes")) as usize;
    let nnz = u32::from_le_bytes(buf[10..14].try_into().expect("4 bytes")) as usize;
    let stored_crc = u16::from_le_bytes(buf[14..16].try_into().expect("2 bytes"));
    if nnz > dim {
        return Err(WireError::NnzExceedsDim { nnz, dim });
    }
    if kind == FrameKind::Dense && nnz != dim {
        return Err(WireError::NnzMismatch {
            declared: nnz,
            actual: dim,
        });
    }
    Ok(ParsedHeader {
        kind,
        codec,
        round,
        dim,
        nnz,
        stored_crc,
    })
}

/// Byte length of the position section: fixed for v1 kinds, discovered
/// (and structurally validated) by scanning the self-delimiting varints
/// for v2 kinds.
fn positions_len(buf: &[u8], h: &ParsedHeader) -> Result<usize, WireError> {
    match h.kind {
        FrameKind::SparseDelta | FrameKind::TernaryDelta => {
            scan_delta_section(buf, HEADER_BYTES, h.dim, h.nnz)
        }
        FrameKind::MaskRle | FrameKind::SparseRle | FrameKind::TernaryRle => {
            scan_rle_section(buf, HEADER_BYTES, h.dim, h.nnz)
        }
        kind => {
            let bitmap = h.dim.div_ceil(8);
            Ok(match kind {
                FrameKind::Dense | FrameKind::KnownMask => 0,
                FrameKind::SparseBitmap | FrameKind::Mask | FrameKind::TernaryBitmap => bitmap,
                FrameKind::SparseIndex | FrameKind::TernaryIndex => 4 * h.nnz,
                _ => unreachable!("entropy kinds handled above"),
            })
        }
    }
}

/// Byte length of the value section (fixed given the header fields).
fn values_len(kind: FrameKind, codec: Codec, dim: usize, nnz: usize) -> u64 {
    match kind {
        FrameKind::Dense => codec.value_section_len(dim) as u64,
        FrameKind::SparseBitmap
        | FrameKind::SparseIndex
        | FrameKind::SparseDelta
        | FrameKind::SparseRle
        | FrameKind::KnownMask => codec.value_section_len(nnz) as u64,
        FrameKind::Mask | FrameKind::MaskRle => 0,
        FrameKind::TernaryBitmap
        | FrameKind::TernaryIndex
        | FrameKind::TernaryDelta
        | FrameKind::TernaryRle => 4 + (nnz as u64).div_ceil(8),
    }
}

/// Walks a delta-varint position section at `buf[start..]`, validating
/// canonical varints and the running index range; returns its byte
/// length.
fn scan_delta_section(
    buf: &[u8],
    start: usize,
    dim: usize,
    nnz: usize,
) -> Result<usize, WireError> {
    let mut pos = start;
    let mut idx: u64 = 0;
    for j in 0..nnz {
        let gap = read_varint(buf, &mut pos)?;
        idx = if j == 0 { gap } else { idx + gap + 1 };
        if idx >= dim as u64 {
            return Err(WireError::IndexOutOfRange {
                index: clamp_u32(idx),
                dim,
            });
        }
    }
    Ok(pos - start)
}

/// Walks a run-length position section at `buf[start..]`, validating
/// canonical varints, positive runs, the `dim` bound, and the exact
/// `nnz` total; returns its byte length.
fn scan_rle_section(buf: &[u8], start: usize, dim: usize, nnz: usize) -> Result<usize, WireError> {
    let mut pos = start;
    let mut covered: u64 = 0; // positions consumed so far
    let mut ones: u64 = 0;
    let mut first = true;
    while ones < nnz as u64 {
        let zeros_at = pos;
        let zeros = read_varint(buf, &mut pos)?;
        if !first && zeros == 0 {
            return Err(WireError::ZeroRun { offset: zeros_at });
        }
        first = false;
        let ones_at = pos;
        let run = read_varint(buf, &mut pos)?;
        if run == 0 {
            return Err(WireError::ZeroRun { offset: ones_at });
        }
        covered += zeros + run;
        ones += run;
        if ones > nnz as u64 {
            return Err(WireError::NnzMismatch {
                declared: nnz,
                actual: usize::try_from(ones).unwrap_or(usize::MAX),
            });
        }
        if covered > dim as u64 {
            return Err(WireError::IndexOutOfRange {
                index: clamp_u32(covered - 1),
                dim,
            });
        }
    }
    Ok(pos - start)
}

fn clamp_u32(v: u64) -> u32 {
    u32::try_from(v.min(u64::from(u32::MAX))).expect("clamped to u32 range")
}

/// Expected `(positions, values)` section lengths for a parsed **v1**
/// header (entropy-kind position lengths are data-dependent and found by
/// scanning — see [`positions_len`]).
fn section_lens(kind: FrameKind, codec: Codec, dim: usize, nnz: usize) -> (u64, u64) {
    let bitmap = (dim as u64).div_ceil(8);
    let positions = match kind {
        FrameKind::Dense | FrameKind::KnownMask => 0,
        FrameKind::SparseBitmap | FrameKind::Mask | FrameKind::TernaryBitmap => bitmap,
        FrameKind::SparseIndex | FrameKind::TernaryIndex => 4 * nnz as u64,
        _ => unreachable!("{kind:?} position length is data-dependent"),
    };
    (positions, values_len(kind, codec, dim, nnz))
}

/// Decodes the frame at the start of `buf`, returning it together with
/// the unconsumed remainder — the streaming form for buffers holding
/// several concatenated frames (e.g. GlueFL's shared + unique upload).
///
/// # Errors
/// Any malformation yields a typed [`WireError`]; see the module docs
/// for the validation performed. For the entropy kinds the position
/// section is scanned (and structurally validated) *before* the
/// checksum can be verified — corruption inside a varint section may
/// therefore surface as its structural error rather than
/// [`WireError::ChecksumMismatch`].
pub fn decode_frame_prefix(buf: &[u8]) -> Result<(Frame<'_>, &[u8]), WireError> {
    match decode_frame_prefix_inner(buf) {
        Ok(ok) => {
            crate::stats::record_decoded(ok.0.kind, ok.0.codec);
            Ok(ok)
        }
        Err(e) => {
            crate::stats::record_decode_error(&e);
            Err(e)
        }
    }
}

fn decode_frame_prefix_inner(buf: &[u8]) -> Result<(Frame<'_>, &[u8]), WireError> {
    let h = parse_header(buf)?;
    let (kind, codec, dim, nnz) = (h.kind, h.codec, h.dim, h.nnz);
    let positions_len = positions_len(buf, &h)?;
    let needed = HEADER_BYTES as u64 + positions_len as u64 + values_len(kind, codec, dim, nnz);
    if (buf.len() as u64) < needed {
        return Err(WireError::Truncated {
            needed: usize::try_from(needed).unwrap_or(usize::MAX),
            got: buf.len(),
        });
    }
    let frame_len = usize::try_from(needed).expect("frame fits the buffer");
    let payload = &buf[HEADER_BYTES..frame_len];
    let computed = crc16_update(crc16(&buf[..14]), payload);
    if computed != h.stored_crc {
        return Err(WireError::ChecksumMismatch {
            stored: h.stored_crc,
            computed,
        });
    }
    let (positions, values) = payload.split_at(positions_len);

    // Structural validation of the position section (the entropy kinds
    // were already validated by the scan that delimited them).
    match kind {
        FrameKind::SparseBitmap | FrameKind::Mask | FrameKind::TernaryBitmap => {
            if !dim.is_multiple_of(8) {
                let tail = positions[positions.len() - 1];
                if tail >> (dim % 8) != 0 {
                    return Err(WireError::NonZeroPadding);
                }
            }
            let popcount: usize = positions.iter().map(|b| b.count_ones() as usize).sum();
            if popcount != nnz {
                return Err(WireError::NnzMismatch {
                    declared: nnz,
                    actual: popcount,
                });
            }
        }
        FrameKind::SparseIndex | FrameKind::TernaryIndex => {
            let mut prev: Option<u32> = None;
            for (j, chunk) in positions.chunks_exact(4).enumerate() {
                let i = u32::from_le_bytes(chunk.try_into().expect("4 bytes"));
                if (i as usize) >= dim {
                    return Err(WireError::IndexOutOfRange { index: i, dim });
                }
                if let Some(p) = prev {
                    if p >= i {
                        return Err(WireError::IndicesNotIncreasing { position: j });
                    }
                }
                prev = Some(i);
            }
        }
        _ => {}
    }
    // Ternary sign bitmaps must also pad with zeros beyond nnz.
    if matches!(
        kind,
        FrameKind::TernaryBitmap
            | FrameKind::TernaryIndex
            | FrameKind::TernaryDelta
            | FrameKind::TernaryRle
    ) && !nnz.is_multiple_of(8)
    {
        let tail = values[values.len() - 1];
        if tail >> (nnz % 8) != 0 {
            return Err(WireError::NonZeroPadding);
        }
    }
    Ok((
        Frame {
            kind,
            codec,
            round: h.round,
            dim,
            nnz,
            positions,
            values,
        },
        &buf[frame_len..],
    ))
}

/// Decodes `buf` as exactly one frame.
///
/// # Errors
/// As [`decode_frame_prefix`], plus [`WireError::TrailingBytes`] when
/// `buf` extends past the frame.
pub fn decode_frame(buf: &[u8]) -> Result<Frame<'_>, WireError> {
    let (frame, rest) = decode_frame_prefix(buf)?;
    if !rest.is_empty() {
        let e = WireError::TrailingBytes { extra: rest.len() };
        crate::stats::record_decode_error(&e);
        return Err(e);
    }
    Ok(frame)
}

impl Frame<'_> {
    /// Appends the decoded values to `out`: `dim` values for dense
    /// frames, `nnz` for sparse/known-mask frames, `nnz` copies of `±µ`
    /// for ternary frames, nothing for mask frames.
    pub fn values_into(&self, out: &mut Vec<f32>) {
        match self.kind {
            FrameKind::Dense => decode_values_into(out, self.codec, self.values, self.dim),
            FrameKind::SparseBitmap
            | FrameKind::SparseIndex
            | FrameKind::SparseDelta
            | FrameKind::SparseRle
            | FrameKind::KnownMask => {
                decode_values_into(out, self.codec, self.values, self.nnz);
            }
            FrameKind::Mask | FrameKind::MaskRle => {}
            FrameKind::TernaryBitmap
            | FrameKind::TernaryIndex
            | FrameKind::TernaryDelta
            | FrameKind::TernaryRle => {
                let mu = self.ternary_mu();
                out.reserve(self.nnz);
                for j in 0..self.nnz {
                    let positive = self.values[4 + j / 8] >> (j % 8) & 1 == 1;
                    out.push(if positive { mu } else { -mu });
                }
            }
        }
    }

    /// Appends the frame's coordinate indices (increasing) to `out`.
    ///
    /// # Panics
    /// Panics for dense, known-mask, and mask frames — their positions
    /// are implicit (everything, the receiver's mask, n/a).
    pub fn indices_into(&self, out: &mut Vec<u32>) {
        match self.kind {
            FrameKind::SparseIndex | FrameKind::TernaryIndex => {
                out.reserve(self.nnz);
                for chunk in self.positions.chunks_exact(4) {
                    out.push(u32::from_le_bytes(chunk.try_into().expect("4 bytes")));
                }
            }
            FrameKind::SparseBitmap | FrameKind::TernaryBitmap => {
                out.reserve(self.nnz);
                for_each_bitmap_one(self.positions, |i| {
                    out.push(u32::try_from(i).expect("dim fits u32"));
                });
            }
            FrameKind::SparseDelta | FrameKind::TernaryDelta => {
                out.reserve(self.nnz);
                let mut pos = 0usize;
                let mut idx = 0u32;
                for j in 0..self.nnz {
                    let gap = read_varint(self.positions, &mut pos)
                        .expect("delta section validated at decode");
                    let gap = u32::try_from(gap).expect("index fits u32");
                    idx = if j == 0 { gap } else { idx + gap + 1 };
                    out.push(idx);
                }
            }
            FrameKind::SparseRle | FrameKind::TernaryRle => {
                out.reserve(self.nnz);
                self.for_each_rle_run(|start, len| {
                    for i in start..start + len {
                        out.push(u32::try_from(i).expect("dim fits u32"));
                    }
                });
            }
            other => panic!("frame kind {other:?} has no explicit positions"),
        }
    }

    /// Rebuilds the position mask into `mask` (reset to `dim` bits).
    ///
    /// # Panics
    /// Panics for kinds without a position bitmap or run-length section.
    pub fn mask_into(&self, mask: &mut BitMask) {
        match self.kind {
            FrameKind::Mask | FrameKind::SparseBitmap | FrameKind::TernaryBitmap => {
                mask.reset(self.dim);
                mask.fill_from_le_bytes(self.positions);
            }
            FrameKind::MaskRle | FrameKind::SparseRle | FrameKind::TernaryRle => {
                mask.reset(self.dim);
                self.for_each_rle_run(|start, len| mask.set_range(start, len));
            }
            other => panic!("frame kind {other:?} carries no mask section"),
        }
    }

    /// Walks a run-length position section's ones-runs as
    /// `(start, len)`, in increasing order.
    fn for_each_rle_run(&self, mut f: impl FnMut(usize, usize)) {
        let mut pos = 0usize;
        let mut at = 0usize; // next uncovered position
        let mut ones = 0usize;
        while ones < self.nnz {
            let zeros = read_varint(self.positions, &mut pos)
                .expect("run-length section validated at decode");
            let run = read_varint(self.positions, &mut pos)
                .expect("run-length section validated at decode");
            let zeros = usize::try_from(zeros).expect("run fits usize");
            let run = usize::try_from(run).expect("run fits usize");
            at += zeros;
            f(at, run);
            at += run;
            ones += run;
        }
    }

    /// The shared magnitude `µ` of a ternary frame.
    ///
    /// # Panics
    /// Panics for non-ternary kinds.
    #[must_use]
    pub fn ternary_mu(&self) -> f32 {
        assert!(
            matches!(
                self.kind,
                FrameKind::TernaryBitmap
                    | FrameKind::TernaryIndex
                    | FrameKind::TernaryDelta
                    | FrameKind::TernaryRle
            ),
            "not a ternary frame"
        );
        f32::from_le_bytes(self.values[..4].try_into().expect("4 bytes"))
    }

    /// Appends a ternary frame's sign bits (`true` = positive) to `out`.
    ///
    /// # Panics
    /// Panics for non-ternary kinds.
    pub fn ternary_signs_into(&self, out: &mut Vec<bool>) {
        assert!(
            matches!(
                self.kind,
                FrameKind::TernaryBitmap
                    | FrameKind::TernaryIndex
                    | FrameKind::TernaryDelta
                    | FrameKind::TernaryRle
            ),
            "not a ternary frame"
        );
        out.reserve(self.nnz);
        for j in 0..self.nnz {
            out.push(self.values[4 + j / 8] >> (j % 8) & 1 == 1);
        }
    }
}

/// Calls `f(i)` for each set bit of a little-endian byte bitmap, in
/// increasing order (word-at-a-time over 8-byte chunks).
fn for_each_bitmap_one(bytes: &[u8], mut f: impl FnMut(usize)) {
    for (ci, chunk) in bytes.chunks(8).enumerate() {
        let mut word_bytes = [0u8; 8];
        word_bytes[..chunk.len()].copy_from_slice(chunk);
        let mut w = u64::from_le_bytes(word_bytes);
        let base = ci * 64;
        while w != 0 {
            f(base + w.trailing_zeros() as usize);
            w &= w - 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{delta_section_len, rle_section_len, rle_section_len_from_indices};
    use gluefl_tensor::wire::WireCost;

    /// Writer reproducing the v1 legacy frame layouts the analytic
    /// [`WireCost`] model prices.
    fn legacy(codec: Codec) -> FrameWriter {
        FrameWriter::new(WirePolicy::legacy(codec))
    }

    #[test]
    fn header_bytes_match_analytic_model() {
        assert_eq!(HEADER_BYTES as u64, gluefl_tensor::wire::HEADER_BYTES);
    }

    #[test]
    fn mask_frames_are_policy_independent() {
        // Mask frames carry no value section, so the legacy and the
        // default (entropy-enabled) policies emit identical bytes.
        let mask = BitMask::from_indices(500, (0..500).step_by(3));
        let mut a = Vec::new();
        let _ = legacy(Codec::F32).mask(&mut a, 1, &mask);
        let mut b = Vec::new();
        let _ = FrameWriter::new(WirePolicy::default()).mask(&mut b, 1, &mask);
        assert_eq!(a, b);
    }

    #[test]
    fn sparse_delta_round_trips_and_matches_section_cost() {
        let dim = 100_000;
        let indices: Vec<u32> = (0..4000u32).map(|i| i * 25).collect();
        let values: Vec<f32> = (0..4000).map(|i| (i as f32 * 0.1).sin()).collect();
        let writer = FrameWriter::new(WirePolicy {
            rle: false,
            ..WirePolicy::entropy(Codec::F32)
        });
        let mut buf = Vec::new();
        let n = writer.sparse(&mut buf, 3, Rounding::Nearest, dim, &indices, &values);
        assert_eq!(n, buf.len());
        assert_eq!(n as u64, writer.sparse_len(dim, &indices));
        assert_eq!(
            n as u64,
            HEADER_BYTES as u64 + delta_section_len(&indices) + 4 * indices.len() as u64
        );
        let frame = decode_frame(&buf).unwrap();
        assert_eq!(frame.kind, FrameKind::SparseDelta);
        assert_eq!(frame.round, 3);
        let (mut ix, mut vals) = (Vec::new(), Vec::new());
        frame.indices_into(&mut ix);
        frame.values_into(&mut vals);
        assert_eq!(ix, indices);
        assert!(values
            .iter()
            .zip(&vals)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn mask_rle_round_trips_and_matches_section_cost() {
        let dim = 10_000;
        let mask = BitMask::from_indices(dim, (0..dim).filter(|i| i / 400 % 3 == 0));
        let writer = FrameWriter::new(WirePolicy::entropy(Codec::F32));
        let mut buf = Vec::new();
        let n = writer.mask(&mut buf, 9, &mask);
        assert_eq!(n as u64, writer.mask_len(&mask));
        assert_eq!(n as u64, HEADER_BYTES as u64 + rle_section_len(&mask));
        assert!((n as u64) < HEADER_BYTES as u64 + dim.div_ceil(8) as u64);
        let frame = decode_frame(&buf).unwrap();
        assert_eq!(frame.kind, FrameKind::MaskRle);
        assert_eq!(frame.nnz, mask.count_ones());
        let mut back = BitMask::zeros(1);
        frame.mask_into(&mut back);
        assert_eq!(back, mask);
    }

    #[test]
    fn sparse_rle_round_trips_for_blocky_indices() {
        let dim = 50_000;
        // 40 blocks of 64 consecutive indices: RLE beats delta and both
        // fixed layouts.
        let indices: Vec<u32> = (0..40u32)
            .flat_map(|b| (0..64u32).map(move |j| b * 1200 + j))
            .collect();
        let values: Vec<f32> = indices.iter().map(|&i| i as f32 * 1e-4).collect();
        let writer = FrameWriter::new(WirePolicy::entropy(Codec::F32));
        let mut buf = Vec::new();
        let n = writer.sparse(&mut buf, 2, Rounding::Nearest, dim, &indices, &values);
        assert_eq!(n as u64, writer.sparse_len(dim, &indices));
        assert_eq!(
            n as u64,
            HEADER_BYTES as u64 + rle_section_len_from_indices(&indices) + 4 * indices.len() as u64
        );
        let frame = decode_frame(&buf).unwrap();
        assert_eq!(frame.kind, FrameKind::SparseRle);
        let (mut ix, mut vals) = (Vec::new(), Vec::new());
        frame.indices_into(&mut ix);
        frame.values_into(&mut vals);
        assert_eq!(ix, indices);
        assert_eq!(vals, values);
        // The mask view agrees with the index view.
        let mut m = BitMask::zeros(1);
        frame.mask_into(&mut m);
        assert_eq!(m.iter_ones().map(|i| i as u32).collect::<Vec<_>>(), indices);
    }

    #[test]
    fn ternary_delta_and_rle_round_trip() {
        let dim = 80_000;
        let scattered: Vec<u32> = (0..900u32).map(|i| i * 88).collect();
        let blocky: Vec<u32> = (0..30u32)
            .flat_map(|b| (0..32u32).map(move |j| b * 2000 + j))
            .collect();
        for (indices, want) in [
            (scattered, FrameKind::TernaryDelta),
            (blocky, FrameKind::TernaryRle),
        ] {
            let signs: Vec<bool> = (0..indices.len()).map(|i| i % 3 != 0).collect();
            let writer = FrameWriter::new(WirePolicy::entropy(Codec::F32));
            let mut buf = Vec::new();
            let n = writer.ternary(&mut buf, 6, dim, 0.25, &indices, &signs);
            assert_eq!(n as u64, writer.ternary_len(dim, &indices));
            let frame = decode_frame(&buf).unwrap();
            assert_eq!(frame.kind, want);
            assert_eq!(frame.ternary_mu(), 0.25);
            let (mut ix, mut s) = (Vec::new(), Vec::new());
            frame.indices_into(&mut ix);
            frame.ternary_signs_into(&mut s);
            assert_eq!(ix, indices);
            assert_eq!(s, signs);
        }
    }

    #[test]
    fn entropy_frames_are_self_delimiting_in_streams() {
        let writer = FrameWriter::new(WirePolicy::entropy(Codec::F32));
        let mut buf = Vec::new();
        let _ = writer.sparse(
            &mut buf,
            1,
            Rounding::Nearest,
            100_000,
            &[10, 400, 90_000],
            &[1.0, 2.0, 3.0],
        );
        let mask = BitMask::from_indices(100_000, 5_000..6_000);
        let _ = writer.mask(&mut buf, 1, &mask);
        let _ = writer.known_mask(&mut buf, 1, Rounding::Nearest, 100_000, &[7.0]);
        let (first, rest) = decode_frame_prefix(&buf).unwrap();
        assert_eq!(first.kind, FrameKind::SparseDelta);
        let (second, rest) = decode_frame_prefix(rest).unwrap();
        assert_eq!(second.kind, FrameKind::MaskRle);
        let (third, rest) = decode_frame_prefix(rest).unwrap();
        assert_eq!(third.kind, FrameKind::KnownMask);
        assert!(rest.is_empty());
        // And the header-scan length agrees frame by frame.
        assert_eq!(frame_len_from_header(&buf).unwrap(), {
            let mut probe = Vec::new();
            let _ = writer.sparse(
                &mut probe,
                1,
                Rounding::Nearest,
                100_000,
                &[10, 400, 90_000],
                &[1.0, 2.0, 3.0],
            );
            probe.len() as u64
        });
    }

    #[test]
    #[should_panic(expected = "data-dependent")]
    fn frame_len_rejects_entropy_kinds() {
        let _ = frame_len(FrameKind::SparseDelta, Codec::F32, 100, 10);
    }

    #[test]
    fn empty_entropy_sparse_frame_is_header_plus_values() {
        // nnz = 0 under the entropy policy still picks the empty index
        // list (precedence), identical to the legacy empty frame.
        let writer = FrameWriter::new(WirePolicy::entropy(Codec::F32));
        let mut buf = Vec::new();
        let n = writer.sparse(&mut buf, 0, Rounding::Nearest, 100, &[], &[]);
        assert_eq!(n as u64, WireCost::sparse(100, 0).total_bytes());
        let frame = decode_frame(&buf).unwrap();
        assert_eq!(frame.kind, FrameKind::SparseIndex);
        assert_eq!(frame.nnz, 0);
    }

    #[test]
    fn v2_byte_with_v1_kind_is_bad_version() {
        // Encode a legacy sparse-index frame, then flip its packed byte
        // to version 2 (kind bits unchanged) and restamp the CRC: the
        // non-canonical version/kind pairing must be rejected.
        let mut buf = Vec::new();
        let _ = legacy(Codec::F32).sparse(&mut buf, 0, Rounding::Nearest, 1000, &[5], &[1.0]);
        buf[1] = (VERSION_ENTROPY << 6) | (buf[1] & 0x3f);
        let crc = crc16_update(crc16(&buf[..14]), &buf[HEADER_BYTES..]);
        buf[14..16].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(decode_frame(&buf), Err(WireError::BadVersion(_))));
    }

    #[test]
    fn dense_round_trip_bit_exact() {
        let values: Vec<f32> = (0..300).map(|i| (i as f32).sin()).collect();
        let mut buf = Vec::new();
        let n = legacy(Codec::F32).dense(&mut buf, 7, Rounding::Nearest, &values);
        assert_eq!(n, buf.len());
        assert_eq!(n as u64, WireCost::dense(values.len()).total_bytes());
        let frame = decode_frame(&buf).unwrap();
        assert_eq!(frame.kind, FrameKind::Dense);
        assert_eq!(frame.round, 7);
        assert_eq!((frame.dim, frame.nnz), (300, 300));
        let mut back = Vec::new();
        frame.values_into(&mut back);
        assert!(values
            .iter()
            .zip(&back)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn sparse_picks_cheaper_position_encoding_like_wirecost() {
        // Very sparse → index list; dense-ish → bitmap; tie → bitmap.
        for (dim, nnz) in [(1000, 3), (1000, 400), (3200, 100), (3200, 99)] {
            let indices: Vec<u32> = (0..nnz as u32)
                .map(|i| i * (dim as u32 / nnz as u32))
                .collect();
            let values: Vec<f32> = (0..nnz).map(|i| i as f32 - 2.0).collect();
            let mut buf = Vec::new();
            let n =
                legacy(Codec::F32).sparse(&mut buf, 0, Rounding::Nearest, dim, &indices, &values);
            assert_eq!(
                n as u64,
                WireCost::sparse(dim, nnz).total_bytes(),
                "dim={dim} nnz={nnz}"
            );
            let frame = decode_frame(&buf).unwrap();
            let mut ix = Vec::new();
            frame.indices_into(&mut ix);
            assert_eq!(ix, indices);
            let mut vals = Vec::new();
            frame.values_into(&mut vals);
            assert_eq!(vals, values);
        }
    }

    #[test]
    fn known_mask_frame_has_no_position_bytes() {
        let values = vec![1.0f32, -2.0, 3.0];
        let mut buf = Vec::new();
        let n = legacy(Codec::F32).known_mask(&mut buf, 3, Rounding::Nearest, 100, &values);
        assert_eq!(n as u64, WireCost::known_mask(3).total_bytes());
        let frame = decode_frame(&buf).unwrap();
        assert_eq!(frame.kind, FrameKind::KnownMask);
        assert_eq!(frame.dim, 100);
        let mut back = Vec::new();
        frame.values_into(&mut back);
        assert_eq!(back, values);
    }

    #[test]
    fn mask_frame_round_trips_and_costs_the_bitmap() {
        let mask = BitMask::from_indices(77, [0usize, 13, 64, 76]);
        let mut buf = Vec::new();
        let n = legacy(Codec::F32).mask(&mut buf, 9, &mask);
        assert_eq!(n, HEADER_BYTES + 77usize.div_ceil(8));
        let frame = decode_frame(&buf).unwrap();
        assert_eq!(frame.kind, FrameKind::Mask);
        assert_eq!(frame.nnz, 4);
        let mut back = BitMask::zeros(1);
        frame.mask_into(&mut back);
        assert_eq!(back, mask);
    }

    #[test]
    fn ternary_round_trip_matches_analytic_cost() {
        let dim = 10_000;
        let indices: Vec<u32> = (0..500).map(|i| i * 17).collect();
        let signs: Vec<bool> = (0..500).map(|i| i % 3 != 0).collect();
        let mut buf = Vec::new();
        let n = legacy(Codec::F32).ternary(&mut buf, 4, dim, 0.125, &indices, &signs);
        // Analytic: positions min(bitmap, 4·nnz) + (ceil(nnz/8) + 4) + header.
        let positions = WireCost::sparse(dim, indices.len()).position_bytes;
        assert_eq!(n as u64, positions + 500u64.div_ceil(8) + 4 + 16);
        let frame = decode_frame(&buf).unwrap();
        assert_eq!(frame.ternary_mu(), 0.125);
        let mut ix = Vec::new();
        frame.indices_into(&mut ix);
        assert_eq!(ix, indices);
        let mut s = Vec::new();
        frame.ternary_signs_into(&mut s);
        assert_eq!(s, signs);
        let mut vals = Vec::new();
        frame.values_into(&mut vals);
        assert!(vals
            .iter()
            .zip(&signs)
            .all(|(&v, &p)| v == if p { 0.125 } else { -0.125 }));
    }

    #[test]
    fn prefix_decoding_streams_concatenated_frames() {
        let mut buf = Vec::new();
        let writer = legacy(Codec::F32);
        writer.known_mask(&mut buf, 1, Rounding::Nearest, 10, &[1.0, 2.0]);
        writer.sparse(&mut buf, 1, Rounding::Nearest, 1000, &[5, 9], &[-1.0, 4.0]);
        let (first, rest) = decode_frame_prefix(&buf).unwrap();
        assert_eq!(first.kind, FrameKind::KnownMask);
        let (second, rest) = decode_frame_prefix(rest).unwrap();
        assert_eq!(second.kind, FrameKind::SparseIndex);
        assert!(rest.is_empty());
        // The strict form rejects the concatenation.
        assert!(matches!(
            decode_frame(&buf),
            Err(WireError::TrailingBytes { .. })
        ));
    }

    #[test]
    fn empty_sparse_frame_is_header_only_plus_rule() {
        // nnz = 0: index list costs 0 < bitmap, so positions are empty —
        // same as WireCost::sparse(d, 0).
        let mut buf = Vec::new();
        let n = legacy(Codec::F32).sparse(&mut buf, 0, Rounding::Nearest, 100, &[], &[]);
        assert_eq!(n as u64, WireCost::sparse(100, 0).total_bytes());
        let frame = decode_frame(&buf).unwrap();
        assert_eq!(frame.nnz, 0);
    }

    #[test]
    fn quantized_frames_are_smaller_and_decode() {
        let values: Vec<f32> = (0..256).map(|i| ((i as f32) * 0.71).sin()).collect();
        let mut f32_buf = Vec::new();
        legacy(Codec::F32).dense(&mut f32_buf, 0, Rounding::Nearest, &values);
        let mut q_buf = Vec::new();
        legacy(Codec::QuantU8).dense(&mut q_buf, 0, Rounding::Nearest, &values);
        let mut h_buf = Vec::new();
        legacy(Codec::F16).dense(&mut h_buf, 0, Rounding::Nearest, &values);
        assert!(q_buf.len() < h_buf.len() && h_buf.len() < f32_buf.len());
        let frame = decode_frame(&q_buf).unwrap();
        assert_eq!(frame.codec, Codec::QuantU8);
        let mut back = Vec::new();
        frame.values_into(&mut back);
        assert_eq!(back.len(), values.len());
        for (v, d) in values.iter().zip(&back) {
            assert!((v - d).abs() <= 1.0 / 254.0 + 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn sparse_writer_rejects_unsorted_indices() {
        let mut buf = Vec::new();
        let _ = legacy(Codec::F32).sparse(&mut buf, 0, Rounding::Nearest, 10, &[3, 1], &[1.0, 2.0]);
    }
}
