//! Frame layout, encoders, and the validating zero-copy decoder.
//!
//! Every round message is one *frame*: a fixed 16-byte header followed by
//! a payload whose exact length is implied by the header. All multi-byte
//! fields are little-endian:
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------------
//!      0     1  magic (0xA7)
//!      1     1  packed: [7:6] version = 1 · [5:3] kind · [2:1] codec ·
//!               [0] reserved (0)
//!      2     4  round id (u32)
//!      6     4  dim — parameter-vector dimension (u32)
//!     10     4  nnz — encoded value count (u32)
//!     14     2  CRC-16/CCITT-FALSE over bytes 0..14 and the payload
//! ------  ----  -----------------------------------------------------
//!     16     …  payload: [positions][values], layouts per kind below
//! ```
//!
//! | kind            | positions              | values                      |
//! |-----------------|------------------------|-----------------------------|
//! | `Dense`         | —                      | `dim` codec values          |
//! | `SparseBitmap`  | `ceil(dim/8)` bitmap   | `nnz` codec values          |
//! | `SparseIndex`   | `nnz` sorted `u32`s (`4·nnz` B) | `nnz` codec values |
//! | `KnownMask`     | — (receiver holds `M`) | `nnz` codec values          |
//! | `Mask`          | `ceil(dim/8)` bitmap   | —                           |
//! | `TernaryBitmap` | `ceil(dim/8)` bitmap   | `f32 µ` + `ceil(nnz/8)` signs |
//! | `TernaryIndex`  | `nnz` sorted `u32`s (`4·nnz` B) | `f32 µ` + `ceil(nnz/8)` signs |
//!
//! Sparse and ternary encoders pick bitmap vs. index-list positions by
//! exactly the [`WireCost::sparse`](gluefl_tensor::wire::WireCost::sparse) rule (`ceil(dim/8) ≤ 4·nnz` → bitmap,
//! ties included), so with the [`Codec::F32`] value codec every frame's
//! encoded length equals the corresponding analytic
//! [`gluefl_tensor::wire::WireCost`] total — the property test suite
//! pins this across adversarial `dim`/`nnz`.
//!
//! Decoding borrows the payload (`&[u8]`, zero-copy) and validates
//! eagerly: magic/version/kind/codec, the checksum, section lengths,
//! `nnz`/`dim` consistency (dense frames, bitmap popcounts), strict index
//! monotonicity and range, and canonical zero padding. Every failure is a
//! typed [`WireError`]; untrusted input never panics.

use crate::codec::{decode_values_into, encode_values, Codec, Rounding};
use crate::crc::{crc16, crc16_update};
use crate::error::WireError;
use gluefl_tensor::BitMask;

/// First byte of every frame.
pub const MAGIC: u8 = 0xA7;

/// Protocol version carried in the packed header byte.
pub const VERSION: u8 = 1;

/// Fixed frame header length in bytes. Kept identical to the analytic
/// cost model's [`gluefl_tensor::wire::HEADER_BYTES`] (pinned by a test)
/// so measured frame lengths and [`gluefl_tensor::wire::WireCost`] totals
/// are directly comparable.
pub const HEADER_BYTES: usize = 16;

/// Payload shape of a frame (the header's kind field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameKind {
    /// Dense values over every coordinate (model broadcast, FedAvg
    /// upload); `nnz == dim`.
    Dense,
    /// Sparse values with a `dim`-bit position bitmap.
    SparseBitmap,
    /// Sparse values with explicit sorted `u32` positions.
    SparseIndex,
    /// Values aligned to a mask the receiver already holds — no position
    /// bytes travel (GlueFL's shared part, APF's active set).
    KnownMask,
    /// A mask broadcast: positions only, no values (GlueFL's `M_t`).
    Mask,
    /// Ternary-quantized sparse values (`sign·µ`) with bitmap positions.
    TernaryBitmap,
    /// Ternary-quantized sparse values with explicit positions.
    TernaryIndex,
}

impl FrameKind {
    /// The kind's wire id (the 3-bit field of the packed header byte) —
    /// also what [`WireError::UnexpectedKind`] reports when a valid
    /// frame shows up somewhere its kind is not admissible.
    #[must_use]
    pub fn id(self) -> u8 {
        match self {
            FrameKind::Dense => 0,
            FrameKind::SparseBitmap => 1,
            FrameKind::SparseIndex => 2,
            FrameKind::KnownMask => 3,
            FrameKind::Mask => 4,
            FrameKind::TernaryBitmap => 5,
            FrameKind::TernaryIndex => 6,
        }
    }

    fn from_id(id: u8) -> Result<Self, WireError> {
        match id {
            0 => Ok(FrameKind::Dense),
            1 => Ok(FrameKind::SparseBitmap),
            2 => Ok(FrameKind::SparseIndex),
            3 => Ok(FrameKind::KnownMask),
            4 => Ok(FrameKind::Mask),
            5 => Ok(FrameKind::TernaryBitmap),
            6 => Ok(FrameKind::TernaryIndex),
            other => Err(WireError::BadKind(other)),
        }
    }

    /// Whether this kind carries codec-encoded values (mask and ternary
    /// frames have fixed value layouts and must declare [`Codec::F32`]).
    fn uses_value_codec(self) -> bool {
        matches!(
            self,
            FrameKind::Dense
                | FrameKind::SparseBitmap
                | FrameKind::SparseIndex
                | FrameKind::KnownMask
        )
    }
}

/// Writes the 16-byte header with a zeroed checksum; returns its offset.
fn begin_frame(
    out: &mut Vec<u8>,
    kind: FrameKind,
    codec: Codec,
    round: u32,
    dim: usize,
    nnz: usize,
) -> usize {
    let dim32 = u32::try_from(dim).expect("dim exceeds u32 range");
    let nnz32 = u32::try_from(nnz).expect("nnz exceeds u32 range");
    assert!(nnz <= dim, "nnz {nnz} exceeds dim {dim}");
    let start = out.len();
    out.reserve(HEADER_BYTES);
    out.push(MAGIC);
    out.push((VERSION << 6) | (kind.id() << 3) | (codec.id() << 1));
    out.extend_from_slice(&round.to_le_bytes());
    out.extend_from_slice(&dim32.to_le_bytes());
    out.extend_from_slice(&nnz32.to_le_bytes());
    out.extend_from_slice(&[0u8; 2]); // checksum placeholder
    start
}

/// Stamps the checksum over the finished frame starting at `start`.
fn finish_frame(out: &mut [u8], start: usize) -> usize {
    let crc = crc16_update(crc16(&out[start..start + 14]), &out[start + HEADER_BYTES..]);
    out[start + 14..start + 16].copy_from_slice(&crc.to_le_bytes());
    out.len() - start
}

/// Encodes a dense frame over all of `values` (e.g. a model broadcast).
/// Returns the frame length in bytes (appended to `out`).
///
/// # Panics
/// Panics if `values.len()` exceeds `u32::MAX`.
pub fn encode_dense(
    out: &mut Vec<u8>,
    round: u32,
    codec: Codec,
    rounding: Rounding,
    values: &[f32],
) -> usize {
    let start = begin_frame(
        out,
        FrameKind::Dense,
        codec,
        round,
        values.len(),
        values.len(),
    );
    encode_values(out, codec, rounding, values);
    finish_frame(out, start)
}

/// Encodes a sparse frame: `values[j]` lives at coordinate `indices[j]`
/// of a `dim`-vector. Positions travel as a bitmap or an index list,
/// whichever is smaller (ties prefer bitmap — the [`WireCost::sparse`](gluefl_tensor::wire::WireCost::sparse)
/// rule, so F32 frame lengths match the analytic model exactly). Returns
/// the frame length in bytes.
///
/// # Panics
/// Panics if the indices are unsorted, repeated, or `>= dim`, or if
/// `indices.len() != values.len()`.
pub fn encode_sparse(
    out: &mut Vec<u8>,
    round: u32,
    codec: Codec,
    rounding: Rounding,
    dim: usize,
    indices: &[u32],
    values: &[f32],
) -> usize {
    assert_eq!(
        indices.len(),
        values.len(),
        "indices/values length mismatch"
    );
    assert_sorted_in_range(indices, dim);
    let nnz = indices.len();
    let bitmap_len = dim.div_ceil(8);
    let start = if bitmap_len <= 4 * nnz {
        let start = begin_frame(out, FrameKind::SparseBitmap, codec, round, dim, nnz);
        extend_bitmap_from_indices(out, bitmap_len, indices);
        start
    } else {
        let start = begin_frame(out, FrameKind::SparseIndex, codec, round, dim, nnz);
        extend_index_list(out, indices);
        start
    };
    encode_values(out, codec, rounding, values);
    finish_frame(out, start)
}

/// Encodes a known-mask frame: `values` aligned (in increasing position
/// order) to a mask the receiver already holds, so no position bytes
/// travel. Returns the frame length in bytes.
pub fn encode_known_mask(
    out: &mut Vec<u8>,
    round: u32,
    codec: Codec,
    rounding: Rounding,
    dim: usize,
    values: &[f32],
) -> usize {
    let start = begin_frame(out, FrameKind::KnownMask, codec, round, dim, values.len());
    encode_values(out, codec, rounding, values);
    finish_frame(out, start)
}

/// Encodes a mask broadcast frame (positions only). Returns the frame
/// length in bytes — always `HEADER_BYTES + ceil(mask.len()/8)`, the
/// analytic per-sync mask bitmap cost.
pub fn encode_mask(out: &mut Vec<u8>, round: u32, mask: &BitMask) -> usize {
    let start = begin_frame(
        out,
        FrameKind::Mask,
        Codec::F32,
        round,
        mask.len(),
        mask.count_ones(),
    );
    mask.extend_le_bytes(out);
    finish_frame(out, start)
}

/// Encodes a ternary-quantized sparse frame: one magnitude `mu` plus a
/// sign bit per kept coordinate (`true` = `+mu`). Positions travel as
/// bitmap or index list, whichever is smaller. Returns the frame length
/// in bytes.
///
/// # Panics
/// Panics if the indices are unsorted, repeated, or `>= dim`, or if
/// `indices.len() != signs.len()`.
pub fn encode_ternary(
    out: &mut Vec<u8>,
    round: u32,
    dim: usize,
    mu: f32,
    indices: &[u32],
    signs: &[bool],
) -> usize {
    assert_eq!(indices.len(), signs.len(), "indices/signs length mismatch");
    assert_sorted_in_range(indices, dim);
    let nnz = indices.len();
    let bitmap_len = dim.div_ceil(8);
    let start = if bitmap_len <= 4 * nnz {
        let start = begin_frame(out, FrameKind::TernaryBitmap, Codec::F32, round, dim, nnz);
        extend_bitmap_from_indices(out, bitmap_len, indices);
        start
    } else {
        let start = begin_frame(out, FrameKind::TernaryIndex, Codec::F32, round, dim, nnz);
        extend_index_list(out, indices);
        start
    };
    out.extend_from_slice(&mu.to_le_bytes());
    let sign_start = out.len();
    out.resize(sign_start + nnz.div_ceil(8), 0);
    for (j, &positive) in signs.iter().enumerate() {
        if positive {
            out[sign_start + j / 8] |= 1 << (j % 8);
        }
    }
    finish_frame(out, start)
}

fn assert_sorted_in_range(indices: &[u32], dim: usize) {
    for (j, &i) in indices.iter().enumerate() {
        assert!((i as usize) < dim, "index {i} out of range {dim}");
        if j > 0 {
            assert!(indices[j - 1] < i, "indices must be strictly increasing");
        }
    }
}

fn extend_bitmap_from_indices(out: &mut Vec<u8>, bitmap_len: usize, indices: &[u32]) {
    let start = out.len();
    out.resize(start + bitmap_len, 0);
    for &i in indices {
        out[start + (i as usize) / 8] |= 1 << (i % 8);
    }
}

fn extend_index_list(out: &mut Vec<u8>, indices: &[u32]) {
    let start = out.len();
    out.resize(start + 4 * indices.len(), 0);
    for (chunk, i) in out[start..].chunks_exact_mut(4).zip(indices) {
        chunk.copy_from_slice(&i.to_le_bytes());
    }
}

/// A decoded frame: parsed header fields plus borrowed (zero-copy)
/// position and value sections. Produced by [`decode_frame`] /
/// [`decode_frame_prefix`], which validate everything up front — the
/// accessor methods only panic when called on an inapplicable kind.
#[derive(Debug, Clone, Copy)]
pub struct Frame<'a> {
    /// Payload shape.
    pub kind: FrameKind,
    /// Value codec (always [`Codec::F32`] for mask/ternary kinds).
    pub codec: Codec,
    /// Round id from the header.
    pub round: u32,
    /// Parameter-vector dimension.
    pub dim: usize,
    /// Number of encoded values (equals `dim` for dense frames; bitmap
    /// popcount for mask frames).
    pub nnz: usize,
    positions: &'a [u8],
    values: &'a [u8],
}

/// Exact encoded length in bytes of a frame with the given header
/// fields (header + positions + values). Frame lengths depend only on
/// `(kind, codec, dim, nnz)` — never on the values themselves — which is
/// what lets a sender (or a scheduler) price an upload *before* encoding
/// it: [`encode_dense`], [`encode_sparse`], [`encode_known_mask`],
/// [`encode_mask`], and [`encode_ternary`] all return exactly this
/// number for matching fields.
#[must_use]
pub fn frame_len(kind: FrameKind, codec: Codec, dim: usize, nnz: usize) -> u64 {
    let (positions, values) = section_lens(kind, codec, dim, nnz);
    HEADER_BYTES as u64 + positions + values
}

/// The position encoding [`encode_sparse`] picks for `(dim, nnz)`:
/// bitmap when `ceil(dim/8) ≤ 4·nnz` (ties included — the
/// [`WireCost::sparse`](gluefl_tensor::wire::WireCost::sparse) rule),
/// index list otherwise.
#[must_use]
pub fn sparse_kind(dim: usize, nnz: usize) -> FrameKind {
    if dim.div_ceil(8) <= 4 * nnz {
        FrameKind::SparseBitmap
    } else {
        FrameKind::SparseIndex
    }
}

/// The position encoding [`encode_ternary`] picks for `(dim, nnz)` —
/// the same bitmap-vs-index rule as [`sparse_kind`].
#[must_use]
pub fn ternary_kind(dim: usize, nnz: usize) -> FrameKind {
    if dim.div_ceil(8) <= 4 * nnz {
        FrameKind::TernaryBitmap
    } else {
        FrameKind::TernaryIndex
    }
}

/// Parses a 16-byte frame header and returns the full frame length it
/// implies (header + payload) — the streaming-read primitive: a socket
/// reader peeks the fixed-size header, learns exactly how many bytes the
/// frame occupies, and reads the remainder without any scanning or
/// buffering heuristics. Performs the same header validation as
/// [`decode_frame_prefix`] up to (but not including) the checksum, which
/// covers the payload and can only be verified once it has arrived.
///
/// # Errors
/// [`WireError::Truncated`] when `header` is shorter than
/// [`HEADER_BYTES`], plus any header malformation `decode_frame_prefix`
/// would report (bad magic/version/kind/codec, `nnz > dim`, dense
/// `nnz != dim`).
pub fn frame_len_from_header(header: &[u8]) -> Result<u64, WireError> {
    if header.len() < HEADER_BYTES {
        return Err(WireError::Truncated {
            needed: HEADER_BYTES,
            got: header.len(),
        });
    }
    if header[0] != MAGIC {
        return Err(WireError::BadMagic(header[0]));
    }
    let packed = header[1];
    if packed >> 6 != VERSION || packed & 1 != 0 {
        return Err(WireError::BadVersion(packed));
    }
    let kind = FrameKind::from_id((packed >> 3) & 0x07)?;
    let codec = Codec::from_id((packed >> 1) & 0x03)?;
    if !kind.uses_value_codec() && codec != Codec::F32 {
        return Err(WireError::BadCodec(codec.id()));
    }
    let dim = u32::from_le_bytes(header[6..10].try_into().expect("4 bytes")) as usize;
    let nnz = u32::from_le_bytes(header[10..14].try_into().expect("4 bytes")) as usize;
    if nnz > dim {
        return Err(WireError::NnzExceedsDim { nnz, dim });
    }
    if kind == FrameKind::Dense && nnz != dim {
        return Err(WireError::NnzMismatch {
            declared: nnz,
            actual: dim,
        });
    }
    Ok(frame_len(kind, codec, dim, nnz))
}

/// Expected `(positions, values)` section lengths for a parsed header.
fn section_lens(kind: FrameKind, codec: Codec, dim: usize, nnz: usize) -> (u64, u64) {
    let bitmap = (dim as u64).div_ceil(8);
    let positions = match kind {
        FrameKind::Dense | FrameKind::KnownMask => 0,
        FrameKind::SparseBitmap | FrameKind::Mask | FrameKind::TernaryBitmap => bitmap,
        FrameKind::SparseIndex | FrameKind::TernaryIndex => 4 * nnz as u64,
    };
    let values = match kind {
        FrameKind::Dense => codec.value_section_len(dim) as u64,
        FrameKind::SparseBitmap | FrameKind::SparseIndex | FrameKind::KnownMask => {
            codec.value_section_len(nnz) as u64
        }
        FrameKind::Mask => 0,
        FrameKind::TernaryBitmap | FrameKind::TernaryIndex => 4 + (nnz as u64).div_ceil(8),
    };
    (positions, values)
}

/// Decodes the frame at the start of `buf`, returning it together with
/// the unconsumed remainder — the streaming form for buffers holding
/// several concatenated frames (e.g. GlueFL's shared + unique upload).
///
/// # Errors
/// Any malformation yields a typed [`WireError`]; see the module docs
/// for the validation performed.
pub fn decode_frame_prefix(buf: &[u8]) -> Result<(Frame<'_>, &[u8]), WireError> {
    if buf.len() < HEADER_BYTES {
        return Err(WireError::Truncated {
            needed: HEADER_BYTES,
            got: buf.len(),
        });
    }
    if buf[0] != MAGIC {
        return Err(WireError::BadMagic(buf[0]));
    }
    let packed = buf[1];
    if packed >> 6 != VERSION || packed & 1 != 0 {
        return Err(WireError::BadVersion(packed));
    }
    let kind = FrameKind::from_id((packed >> 3) & 0x07)?;
    let codec = Codec::from_id((packed >> 1) & 0x03)?;
    if !kind.uses_value_codec() && codec != Codec::F32 {
        // Mask/ternary frames have fixed layouts; a non-zero codec field
        // is non-canonical.
        return Err(WireError::BadCodec(codec.id()));
    }
    let round = u32::from_le_bytes(buf[2..6].try_into().expect("4 bytes"));
    let dim = u32::from_le_bytes(buf[6..10].try_into().expect("4 bytes")) as usize;
    let nnz = u32::from_le_bytes(buf[10..14].try_into().expect("4 bytes")) as usize;
    let stored_crc = u16::from_le_bytes(buf[14..16].try_into().expect("2 bytes"));
    if nnz > dim {
        return Err(WireError::NnzExceedsDim { nnz, dim });
    }
    if kind == FrameKind::Dense && nnz != dim {
        return Err(WireError::NnzMismatch {
            declared: nnz,
            actual: dim,
        });
    }
    let (positions_len, values_len) = section_lens(kind, codec, dim, nnz);
    let needed = HEADER_BYTES as u64 + positions_len + values_len;
    if (buf.len() as u64) < needed {
        return Err(WireError::Truncated {
            needed: usize::try_from(needed).unwrap_or(usize::MAX),
            got: buf.len(),
        });
    }
    let frame_len = usize::try_from(needed).expect("frame fits the buffer");
    let payload = &buf[HEADER_BYTES..frame_len];
    let computed = crc16_update(crc16(&buf[..14]), payload);
    if computed != stored_crc {
        return Err(WireError::ChecksumMismatch {
            stored: stored_crc,
            computed,
        });
    }
    let (positions, values) = payload.split_at(positions_len as usize);

    // Structural validation of the position section.
    match kind {
        FrameKind::SparseBitmap | FrameKind::Mask | FrameKind::TernaryBitmap => {
            if !dim.is_multiple_of(8) {
                let tail = positions[positions.len() - 1];
                if tail >> (dim % 8) != 0 {
                    return Err(WireError::NonZeroPadding);
                }
            }
            let popcount: usize = positions.iter().map(|b| b.count_ones() as usize).sum();
            if popcount != nnz {
                return Err(WireError::NnzMismatch {
                    declared: nnz,
                    actual: popcount,
                });
            }
        }
        FrameKind::SparseIndex | FrameKind::TernaryIndex => {
            let mut prev: Option<u32> = None;
            for (j, chunk) in positions.chunks_exact(4).enumerate() {
                let i = u32::from_le_bytes(chunk.try_into().expect("4 bytes"));
                if (i as usize) >= dim {
                    return Err(WireError::IndexOutOfRange { index: i, dim });
                }
                if let Some(p) = prev {
                    if p >= i {
                        return Err(WireError::IndicesNotIncreasing { position: j });
                    }
                }
                prev = Some(i);
            }
        }
        FrameKind::Dense | FrameKind::KnownMask => {}
    }
    // Ternary sign bitmaps must also pad with zeros beyond nnz.
    if matches!(kind, FrameKind::TernaryBitmap | FrameKind::TernaryIndex) && !nnz.is_multiple_of(8)
    {
        let tail = values[values.len() - 1];
        if tail >> (nnz % 8) != 0 {
            return Err(WireError::NonZeroPadding);
        }
    }
    Ok((
        Frame {
            kind,
            codec,
            round,
            dim,
            nnz,
            positions,
            values,
        },
        &buf[frame_len..],
    ))
}

/// Decodes `buf` as exactly one frame.
///
/// # Errors
/// As [`decode_frame_prefix`], plus [`WireError::TrailingBytes`] when
/// `buf` extends past the frame.
pub fn decode_frame(buf: &[u8]) -> Result<Frame<'_>, WireError> {
    let (frame, rest) = decode_frame_prefix(buf)?;
    if !rest.is_empty() {
        return Err(WireError::TrailingBytes { extra: rest.len() });
    }
    Ok(frame)
}

impl Frame<'_> {
    /// Appends the decoded values to `out`: `dim` values for dense
    /// frames, `nnz` for sparse/known-mask frames, `nnz` copies of `±µ`
    /// for ternary frames, nothing for mask frames.
    pub fn values_into(&self, out: &mut Vec<f32>) {
        match self.kind {
            FrameKind::Dense => decode_values_into(out, self.codec, self.values, self.dim),
            FrameKind::SparseBitmap | FrameKind::SparseIndex | FrameKind::KnownMask => {
                decode_values_into(out, self.codec, self.values, self.nnz);
            }
            FrameKind::Mask => {}
            FrameKind::TernaryBitmap | FrameKind::TernaryIndex => {
                let mu = self.ternary_mu();
                out.reserve(self.nnz);
                for j in 0..self.nnz {
                    let positive = self.values[4 + j / 8] >> (j % 8) & 1 == 1;
                    out.push(if positive { mu } else { -mu });
                }
            }
        }
    }

    /// Appends the frame's coordinate indices (increasing) to `out`.
    ///
    /// # Panics
    /// Panics for dense, known-mask, and mask frames — their positions
    /// are implicit (everything, the receiver's mask, n/a).
    pub fn indices_into(&self, out: &mut Vec<u32>) {
        match self.kind {
            FrameKind::SparseIndex | FrameKind::TernaryIndex => {
                out.reserve(self.nnz);
                for chunk in self.positions.chunks_exact(4) {
                    out.push(u32::from_le_bytes(chunk.try_into().expect("4 bytes")));
                }
            }
            FrameKind::SparseBitmap | FrameKind::TernaryBitmap => {
                out.reserve(self.nnz);
                for_each_bitmap_one(self.positions, |i| {
                    out.push(u32::try_from(i).expect("dim fits u32"));
                });
            }
            other => panic!("frame kind {other:?} has no explicit positions"),
        }
    }

    /// Rebuilds the position bitmap into `mask` (reset to `dim` bits).
    ///
    /// # Panics
    /// Panics for kinds without a position bitmap.
    pub fn mask_into(&self, mask: &mut BitMask) {
        match self.kind {
            FrameKind::Mask | FrameKind::SparseBitmap | FrameKind::TernaryBitmap => {
                mask.reset(self.dim);
                mask.fill_from_le_bytes(self.positions);
            }
            other => panic!("frame kind {other:?} carries no bitmap"),
        }
    }

    /// The shared magnitude `µ` of a ternary frame.
    ///
    /// # Panics
    /// Panics for non-ternary kinds.
    #[must_use]
    pub fn ternary_mu(&self) -> f32 {
        assert!(
            matches!(
                self.kind,
                FrameKind::TernaryBitmap | FrameKind::TernaryIndex
            ),
            "not a ternary frame"
        );
        f32::from_le_bytes(self.values[..4].try_into().expect("4 bytes"))
    }

    /// Appends a ternary frame's sign bits (`true` = positive) to `out`.
    ///
    /// # Panics
    /// Panics for non-ternary kinds.
    pub fn ternary_signs_into(&self, out: &mut Vec<bool>) {
        assert!(
            matches!(
                self.kind,
                FrameKind::TernaryBitmap | FrameKind::TernaryIndex
            ),
            "not a ternary frame"
        );
        out.reserve(self.nnz);
        for j in 0..self.nnz {
            out.push(self.values[4 + j / 8] >> (j % 8) & 1 == 1);
        }
    }
}

/// Calls `f(i)` for each set bit of a little-endian byte bitmap, in
/// increasing order (word-at-a-time over 8-byte chunks).
fn for_each_bitmap_one(bytes: &[u8], mut f: impl FnMut(usize)) {
    for (ci, chunk) in bytes.chunks(8).enumerate() {
        let mut word_bytes = [0u8; 8];
        word_bytes[..chunk.len()].copy_from_slice(chunk);
        let mut w = u64::from_le_bytes(word_bytes);
        let base = ci * 64;
        while w != 0 {
            f(base + w.trailing_zeros() as usize);
            w &= w - 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gluefl_tensor::wire::WireCost;

    #[test]
    fn header_bytes_match_analytic_model() {
        assert_eq!(HEADER_BYTES as u64, gluefl_tensor::wire::HEADER_BYTES);
    }

    #[test]
    fn dense_round_trip_bit_exact() {
        let values: Vec<f32> = (0..300).map(|i| (i as f32).sin()).collect();
        let mut buf = Vec::new();
        let n = encode_dense(&mut buf, 7, Codec::F32, Rounding::Nearest, &values);
        assert_eq!(n, buf.len());
        assert_eq!(n as u64, WireCost::dense(values.len()).total_bytes());
        let frame = decode_frame(&buf).unwrap();
        assert_eq!(frame.kind, FrameKind::Dense);
        assert_eq!(frame.round, 7);
        assert_eq!((frame.dim, frame.nnz), (300, 300));
        let mut back = Vec::new();
        frame.values_into(&mut back);
        assert!(values
            .iter()
            .zip(&back)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn sparse_picks_cheaper_position_encoding_like_wirecost() {
        // Very sparse → index list; dense-ish → bitmap; tie → bitmap.
        for (dim, nnz) in [(1000, 3), (1000, 400), (3200, 100), (3200, 99)] {
            let indices: Vec<u32> = (0..nnz as u32)
                .map(|i| i * (dim as u32 / nnz as u32))
                .collect();
            let values: Vec<f32> = (0..nnz).map(|i| i as f32 - 2.0).collect();
            let mut buf = Vec::new();
            let n = encode_sparse(
                &mut buf,
                0,
                Codec::F32,
                Rounding::Nearest,
                dim,
                &indices,
                &values,
            );
            assert_eq!(
                n as u64,
                WireCost::sparse(dim, nnz).total_bytes(),
                "dim={dim} nnz={nnz}"
            );
            let frame = decode_frame(&buf).unwrap();
            let mut ix = Vec::new();
            frame.indices_into(&mut ix);
            assert_eq!(ix, indices);
            let mut vals = Vec::new();
            frame.values_into(&mut vals);
            assert_eq!(vals, values);
        }
    }

    #[test]
    fn known_mask_frame_has_no_position_bytes() {
        let values = vec![1.0f32, -2.0, 3.0];
        let mut buf = Vec::new();
        let n = encode_known_mask(&mut buf, 3, Codec::F32, Rounding::Nearest, 100, &values);
        assert_eq!(n as u64, WireCost::known_mask(3).total_bytes());
        let frame = decode_frame(&buf).unwrap();
        assert_eq!(frame.kind, FrameKind::KnownMask);
        assert_eq!(frame.dim, 100);
        let mut back = Vec::new();
        frame.values_into(&mut back);
        assert_eq!(back, values);
    }

    #[test]
    fn mask_frame_round_trips_and_costs_the_bitmap() {
        let mask = BitMask::from_indices(77, [0usize, 13, 64, 76]);
        let mut buf = Vec::new();
        let n = encode_mask(&mut buf, 9, &mask);
        assert_eq!(n, HEADER_BYTES + 77usize.div_ceil(8));
        let frame = decode_frame(&buf).unwrap();
        assert_eq!(frame.kind, FrameKind::Mask);
        assert_eq!(frame.nnz, 4);
        let mut back = BitMask::zeros(1);
        frame.mask_into(&mut back);
        assert_eq!(back, mask);
    }

    #[test]
    fn ternary_round_trip_matches_analytic_cost() {
        let dim = 10_000;
        let indices: Vec<u32> = (0..500).map(|i| i * 17).collect();
        let signs: Vec<bool> = (0..500).map(|i| i % 3 != 0).collect();
        let mut buf = Vec::new();
        let n = encode_ternary(&mut buf, 4, dim, 0.125, &indices, &signs);
        // Analytic: positions min(bitmap, 4·nnz) + (ceil(nnz/8) + 4) + header.
        let positions = WireCost::sparse(dim, indices.len()).position_bytes;
        assert_eq!(n as u64, positions + 500u64.div_ceil(8) + 4 + 16);
        let frame = decode_frame(&buf).unwrap();
        assert_eq!(frame.ternary_mu(), 0.125);
        let mut ix = Vec::new();
        frame.indices_into(&mut ix);
        assert_eq!(ix, indices);
        let mut s = Vec::new();
        frame.ternary_signs_into(&mut s);
        assert_eq!(s, signs);
        let mut vals = Vec::new();
        frame.values_into(&mut vals);
        assert!(vals
            .iter()
            .zip(&signs)
            .all(|(&v, &p)| v == if p { 0.125 } else { -0.125 }));
    }

    #[test]
    fn prefix_decoding_streams_concatenated_frames() {
        let mut buf = Vec::new();
        encode_known_mask(&mut buf, 1, Codec::F32, Rounding::Nearest, 10, &[1.0, 2.0]);
        encode_sparse(
            &mut buf,
            1,
            Codec::F32,
            Rounding::Nearest,
            1000,
            &[5, 9],
            &[-1.0, 4.0],
        );
        let (first, rest) = decode_frame_prefix(&buf).unwrap();
        assert_eq!(first.kind, FrameKind::KnownMask);
        let (second, rest) = decode_frame_prefix(rest).unwrap();
        assert_eq!(second.kind, FrameKind::SparseIndex);
        assert!(rest.is_empty());
        // The strict form rejects the concatenation.
        assert!(matches!(
            decode_frame(&buf),
            Err(WireError::TrailingBytes { .. })
        ));
    }

    #[test]
    fn empty_sparse_frame_is_header_only_plus_rule() {
        // nnz = 0: index list costs 0 < bitmap, so positions are empty —
        // same as WireCost::sparse(d, 0).
        let mut buf = Vec::new();
        let n = encode_sparse(&mut buf, 0, Codec::F32, Rounding::Nearest, 100, &[], &[]);
        assert_eq!(n as u64, WireCost::sparse(100, 0).total_bytes());
        let frame = decode_frame(&buf).unwrap();
        assert_eq!(frame.nnz, 0);
    }

    #[test]
    fn quantized_frames_are_smaller_and_decode() {
        let values: Vec<f32> = (0..256).map(|i| ((i as f32) * 0.71).sin()).collect();
        let mut f32_buf = Vec::new();
        encode_dense(&mut f32_buf, 0, Codec::F32, Rounding::Nearest, &values);
        let mut q_buf = Vec::new();
        encode_dense(&mut q_buf, 0, Codec::QuantU8, Rounding::Nearest, &values);
        let mut h_buf = Vec::new();
        encode_dense(&mut h_buf, 0, Codec::F16, Rounding::Nearest, &values);
        assert!(q_buf.len() < h_buf.len() && h_buf.len() < f32_buf.len());
        let frame = decode_frame(&q_buf).unwrap();
        assert_eq!(frame.codec, Codec::QuantU8);
        let mut back = Vec::new();
        frame.values_into(&mut back);
        assert_eq!(back.len(), values.len());
        for (v, d) in values.iter().zip(&back) {
            assert!((v - d).abs() <= 1.0 / 254.0 + 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn encode_sparse_rejects_unsorted_indices() {
        let mut buf = Vec::new();
        let _ = encode_sparse(
            &mut buf,
            0,
            Codec::F32,
            Rounding::Nearest,
            10,
            &[3, 1],
            &[1.0, 2.0],
        );
    }
}
