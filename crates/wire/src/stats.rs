//! Process-wide frame counters: frames encoded and decoded by
//! `(kind, version, codec)`, and decode failures by typed
//! [`WireError`] variant.
//!
//! The counters are relaxed global atomics bumped once per *frame* at
//! the two choke points every frame passes through (`begin_frame` on
//! encode, [`crate::decode_frame_prefix`] on decode) — never per
//! element, so the cost is invisible next to the payload work. They
//! exist so the observability layer can export wire traffic without
//! the wire crate depending on the telemetry crate: callers drain
//! [`encoded_frames`] / [`decoded_frames`] / [`decode_errors`] into
//! whatever exposition format they serve.
//!
//! Counters are process-wide and monotonic; concurrent tests therefore
//! assert on *deltas*, not absolute values.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::codec::Codec;
use crate::error::WireError;
use crate::frame::FrameKind;

const KINDS: usize = 12;
const CODECS: usize = 3;

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
#[allow(clippy::declare_interior_mutable_const)]
const ZERO_ROW: [AtomicU64; CODECS] = [ZERO; CODECS];

static ENCODED: [[AtomicU64; CODECS]; KINDS] = [ZERO_ROW; KINDS];
static DECODED: [[AtomicU64; CODECS]; KINDS] = [ZERO_ROW; KINDS];
static ERRORS: [AtomicU64; WireError::STAT_KINDS] = [ZERO; WireError::STAT_KINDS];

pub(crate) fn record_encoded(kind: FrameKind, codec: Codec) {
    ENCODED[kind.id() as usize][codec.id() as usize].fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_decoded(kind: FrameKind, codec: Codec) {
    DECODED[kind.id() as usize][codec.id() as usize].fetch_add(1, Ordering::Relaxed);
}

/// Counts `err` in the typed decode-error table.
///
/// The decode entry points ([`crate::decode_frame`],
/// [`crate::decode_frame_prefix`]) call this themselves; it is public
/// so receivers that *reject* a structurally valid frame with a typed
/// [`WireError`] of their own (an inadmissible kind, a dimension
/// mismatch against local state) can fold those into the same table.
pub fn record_decode_error(err: &WireError) {
    ERRORS[err.stat_index()].fetch_add(1, Ordering::Relaxed);
}

/// One row of a per-`(kind, codec)` frame-counter table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameCount {
    /// The frame kind.
    pub kind: FrameKind,
    /// The value codec the frame declared.
    pub codec: Codec,
    /// Frames counted so far (process lifetime).
    pub count: u64,
}

fn drain(table: &[[AtomicU64; CODECS]; KINDS]) -> Vec<FrameCount> {
    let mut out = Vec::new();
    for kind_id in 0..KINDS as u8 {
        let kind = FrameKind::from_id(kind_id).expect("table is indexed by valid ids");
        for codec_id in 0..CODECS as u8 {
            let count = table[kind_id as usize][codec_id as usize].load(Ordering::Relaxed);
            if count > 0 {
                let codec = Codec::from_id(codec_id).expect("table is indexed by valid ids");
                out.push(FrameCount { kind, codec, count });
            }
        }
    }
    out
}

/// Frames encoded since process start, by `(kind, codec)`; zero rows
/// are omitted. The wire version is implied by the kind
/// ([`FrameKind::version_name`]).
#[must_use]
pub fn encoded_frames() -> Vec<FrameCount> {
    drain(&ENCODED)
}

/// Frames successfully decoded since process start, by `(kind, codec)`;
/// zero rows are omitted.
#[must_use]
pub fn decoded_frames() -> Vec<FrameCount> {
    drain(&DECODED)
}

/// Decode failures since process start as `(variant name, count)`
/// pairs, zero rows omitted. Names are [`WireError::stat_name`]s.
#[must_use]
pub fn decode_errors() -> Vec<(&'static str, u64)> {
    (0..WireError::STAT_KINDS)
        .filter_map(|i| {
            let count = ERRORS[i].load(Ordering::Relaxed);
            (count > 0).then(|| (WireError::stat_name_of(i), count))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{decode_frame, FrameWriter, Rounding, WirePolicy};

    fn count_of(rows: &[FrameCount], kind: FrameKind, codec: Codec) -> u64 {
        rows.iter()
            .find(|r| r.kind == kind && r.codec == codec)
            .map_or(0, |r| r.count)
    }

    #[test]
    fn encode_and_decode_bump_the_matching_row() {
        let writer = FrameWriter::new(WirePolicy::legacy(Codec::F32));
        let enc0 = count_of(&encoded_frames(), FrameKind::Dense, Codec::F32);
        let dec0 = count_of(&decoded_frames(), FrameKind::Dense, Codec::F32);
        let mut buf = Vec::new();
        writer.dense(&mut buf, 3, Rounding::Nearest, &[1.0, 2.0]);
        decode_frame(&buf).unwrap();
        // Deltas, not absolutes: the tables are process-wide and other
        // tests encode frames concurrently.
        assert!(count_of(&encoded_frames(), FrameKind::Dense, Codec::F32) > enc0);
        assert!(count_of(&decoded_frames(), FrameKind::Dense, Codec::F32) > dec0);
    }

    #[test]
    fn decode_failures_land_in_the_typed_table() {
        let writer = FrameWriter::new(WirePolicy::legacy(Codec::F32));
        let mut buf = Vec::new();
        writer.dense(&mut buf, 3, Rounding::Nearest, &[1.0, 2.0]);
        let last = buf.len() - 1;
        buf[last] ^= 0xFF;
        let before: u64 = decode_errors()
            .iter()
            .find(|(n, _)| *n == "checksum_mismatch")
            .map_or(0, |&(_, c)| c);
        assert!(matches!(
            decode_frame(&buf),
            Err(WireError::ChecksumMismatch { .. })
        ));
        let after: u64 = decode_errors()
            .iter()
            .find(|(n, _)| *n == "checksum_mismatch")
            .map_or(0, |&(_, c)| c);
        assert!(after > before);
    }
}
