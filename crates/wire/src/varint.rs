//! Canonical LEB128 varints for the entropy frame layouts.
//!
//! Values on the wire are all `< 2^32` (coordinate indices, index gaps,
//! run lengths), so an encoder never emits more than 5 bytes. Decoding
//! enforces the *canonical* (shortest) form: a multi-byte varint whose
//! final byte is `0x00` encodes its value in more bytes than needed and
//! is rejected as [`WireError::OverlongVarint`] — every value has exactly
//! one valid encoding, so re-encoding a decoded frame is byte-identical.

use crate::error::WireError;

/// Longest admissible varint: 5 × 7 bits ≥ the 32-bit value range.
const MAX_VARINT_BYTES: usize = 5;

/// Appends the canonical LEB128 encoding of `v`.
pub(crate) fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    debug_assert!(v >> 35 == 0, "varint value {v} exceeds 35 bits");
    loop {
        let b = u8::try_from(v & 0x7f).expect("masked to 7 bits");
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

/// Byte length of the canonical LEB128 encoding of `v` (1–5 for the
/// 32-bit value range).
pub(crate) fn varint_len(v: u64) -> usize {
    let bits = 64 - (v | 1).leading_zeros() as usize;
    bits.div_ceil(7)
}

/// Reads one canonical varint from `buf` at `*pos`, advancing `*pos`
/// past it.
///
/// # Errors
/// [`WireError::Truncated`] when the buffer ends mid-varint (`needed` is
/// the minimal buffer length that could complete it),
/// [`WireError::OverlongVarint`] for a non-canonical (padded) encoding
/// or one longer than 5 bytes.
pub(crate) fn read_varint(buf: &[u8], pos: &mut usize) -> Result<u64, WireError> {
    let start = *pos;
    let mut v: u64 = 0;
    for i in 0..MAX_VARINT_BYTES {
        let Some(&b) = buf.get(start + i) else {
            return Err(WireError::Truncated {
                needed: start + i + 1,
                got: buf.len(),
            });
        };
        v |= u64::from(b & 0x7f) << (7 * i);
        if b & 0x80 == 0 {
            if i > 0 && b == 0 {
                // A zero continuation tail means a shorter encoding
                // exists — non-canonical.
                return Err(WireError::OverlongVarint { offset: start });
            }
            *pos = start + i + 1;
            return Ok(v);
        }
    }
    Err(WireError::OverlongVarint { offset: start })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_lengths_agree() {
        let cases: [u64; 12] = [
            0,
            1,
            127,
            128,
            129,
            16_383,
            16_384,
            2_097_151,
            2_097_152,
            268_435_455,
            268_435_456,
            u64::from(u32::MAX),
        ];
        for v in cases {
            let mut buf = Vec::new();
            push_varint(&mut buf, v);
            assert_eq!(buf.len(), varint_len(v), "v={v}");
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v, "v={v}");
            assert_eq!(pos, buf.len(), "v={v}");
        }
    }

    #[test]
    fn overlong_encodings_are_rejected() {
        // 0 padded to two bytes; 1 padded to three.
        for bytes in [&[0x80u8, 0x00][..], &[0x81, 0x80, 0x00][..]] {
            let mut pos = 0;
            assert_eq!(
                read_varint(bytes, &mut pos),
                Err(WireError::OverlongVarint { offset: 0 })
            );
        }
        // Six continuation bytes exceed the 32-bit value range.
        let mut pos = 0;
        assert_eq!(
            read_varint(&[0x80; 6], &mut pos),
            Err(WireError::OverlongVarint { offset: 0 })
        );
    }

    #[test]
    fn truncation_mid_varint_is_typed() {
        let mut pos = 0;
        assert_eq!(
            read_varint(&[0x80, 0x80], &mut pos),
            Err(WireError::Truncated { needed: 3, got: 2 })
        );
        let mut pos = 0;
        assert_eq!(
            read_varint(&[], &mut pos),
            Err(WireError::Truncated { needed: 1, got: 0 })
        );
    }
}
