//! Pluggable value codecs: how `f32` parameter values are laid out in a
//! frame's value section.
//!
//! Three codecs are defined:
//!
//! * [`Codec::F32`] — 4 bytes per value, little-endian IEEE 754 single
//!   precision. Bit-exact round trip; the analytic
//!   [`gluefl_tensor::wire::WireCost`] model is written in terms of this
//!   codec.
//! * [`Codec::F16`] — 2 bytes per value, IEEE 754 half precision with
//!   round-to-nearest-even. Relative error ≤ 2⁻¹¹ in the normal range;
//!   values above the f16 range saturate to ±∞.
//! * [`Codec::QuantU8`] — 1 byte per value plus one `f32` scale per
//!   [`QUANT_BLOCK`]-value block. Each block stores
//!   `q = round(v / scale) + 128` with `scale = max|v| / 127`, so the
//!   reconstruction error is at most `scale / 2` under
//!   [`Rounding::Nearest`] and strictly below `scale` (unbiased in
//!   expectation) under [`Rounding::Stochastic`].
//!
//! Stochastic rounding is *deterministic*: the Bernoulli draw for value
//! `i` is a pure hash of `(seed, i)` ([`gluefl_tensor::rng::splitmix64`]),
//! so an encode is a function of its arguments alone — independent of
//! thread schedule, and reproducible when the caller derives the seed
//! from `(master seed, round, client)` as the simulator does.

use crate::error::WireError;
use gluefl_tensor::rng::splitmix64;

/// Values per quantization block in [`Codec::QuantU8`] (one `f32` scale
/// is stored per block).
pub const QUANT_BLOCK: usize = 64;

/// Wire identifier of a value codec (the frame header's codec field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Codec {
    /// Little-endian `f32`: 4 bytes per value, bit-exact.
    F32,
    /// IEEE 754 half precision: 2 bytes per value, round-to-nearest-even.
    F16,
    /// Blockwise 8-bit quantization: 1 byte per value plus a 4-byte scale
    /// per [`QUANT_BLOCK`] values.
    QuantU8,
}

impl Codec {
    /// A stable snake_case name, used as the metric label value in
    /// exported frame counters.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Codec::F32 => "f32",
            Codec::F16 => "f16",
            Codec::QuantU8 => "quant_u8",
        }
    }

    /// The wire id stored in the frame header.
    #[must_use]
    pub fn id(self) -> u8 {
        match self {
            Codec::F32 => 0,
            Codec::F16 => 1,
            Codec::QuantU8 => 2,
        }
    }

    /// Parses a wire id.
    ///
    /// # Errors
    /// Returns [`WireError::BadCodec`] for unknown ids.
    pub fn from_id(id: u8) -> Result<Self, WireError> {
        match id {
            0 => Ok(Codec::F32),
            1 => Ok(Codec::F16),
            2 => Ok(Codec::QuantU8),
            other => Err(WireError::BadCodec(other)),
        }
    }

    /// Exact byte length of this codec's value section for `n` values.
    #[must_use]
    pub fn value_section_len(self, n: usize) -> usize {
        match self {
            Codec::F32 => 4 * n,
            Codec::F16 => 2 * n,
            Codec::QuantU8 => n + 4 * n.div_ceil(QUANT_BLOCK),
        }
    }
}

/// How [`Codec::QuantU8`] rounds `v / scale` to an integer level.
/// Ignored by the lossless/deterministic codecs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rounding {
    /// Round to the nearest level (ties away from zero via `f32::round`):
    /// reconstruction error ≤ `scale / 2`.
    Nearest,
    /// Unbiased stochastic rounding: value `i` rounds up with probability
    /// equal to its fractional part, using the deterministic per-value
    /// hash of `(seed, i)`. Reconstruction error < `scale`.
    Stochastic {
        /// Stream seed; derive from `(master, round, client)` for
        /// schedule-independent reproducibility.
        seed: u64,
    },
}

/// Appends `values` to `out` in this codec's layout. Returns the number
/// of bytes appended (always `codec.value_section_len(values.len())`).
pub fn encode_values(out: &mut Vec<u8>, codec: Codec, rounding: Rounding, values: &[f32]) -> usize {
    let start = out.len();
    match codec {
        Codec::F32 => {
            out.resize(start + 4 * values.len(), 0);
            for (chunk, v) in out[start..].chunks_exact_mut(4).zip(values) {
                chunk.copy_from_slice(&v.to_le_bytes());
            }
        }
        Codec::F16 => {
            out.resize(start + 2 * values.len(), 0);
            for (chunk, &v) in out[start..].chunks_exact_mut(2).zip(values) {
                chunk.copy_from_slice(&f32_to_f16_bits(v).to_le_bytes());
            }
        }
        Codec::QuantU8 => {
            out.reserve(values.len() + 4 * values.len().div_ceil(QUANT_BLOCK));
            for (b, block) in values.chunks(QUANT_BLOCK).enumerate() {
                let max_abs = block.iter().fold(0.0f32, |m, v| m.max(v.abs()));
                let scale = max_abs / 127.0;
                out.extend_from_slice(&scale.to_le_bytes());
                for (j, &v) in block.iter().enumerate() {
                    out.push(quantize_u8(v, scale, rounding, b * QUANT_BLOCK + j));
                }
            }
        }
    }
    out.len() - start
}

/// Decodes a value section of exactly `n` values into `out` (appended).
///
/// The caller (frame decoding) guarantees `bytes.len() ==
/// codec.value_section_len(n)`; this function panics otherwise.
pub fn decode_values_into(out: &mut Vec<f32>, codec: Codec, bytes: &[u8], n: usize) {
    assert_eq!(
        bytes.len(),
        codec.value_section_len(n),
        "value section length mismatch"
    );
    out.reserve(n);
    match codec {
        Codec::F32 => {
            for chunk in bytes.chunks_exact(4) {
                out.push(f32::from_le_bytes(chunk.try_into().expect("4-byte chunk")));
            }
        }
        Codec::F16 => {
            for chunk in bytes.chunks_exact(2) {
                out.push(f16_bits_to_f32(u16::from_le_bytes(
                    chunk.try_into().expect("2-byte chunk"),
                )));
            }
        }
        Codec::QuantU8 => {
            let mut rest = bytes;
            let mut remaining = n;
            while remaining > 0 {
                let block_len = remaining.min(QUANT_BLOCK);
                let (scale_bytes, tail) = rest.split_at(4);
                let (levels, tail) = tail.split_at(block_len);
                let scale = f32::from_le_bytes(scale_bytes.try_into().expect("4-byte scale"));
                for &q in levels {
                    out.push(f32::from(i16::from(q) - 128) * scale);
                }
                rest = tail;
                remaining -= block_len;
            }
        }
    }
}

/// Quantizes one value to a `u8` level around zero-point 128.
fn quantize_u8(v: f32, scale: f32, rounding: Rounding, index: usize) -> u8 {
    if scale == 0.0 {
        return 128;
    }
    let x = v / scale; // in [-127, 127] up to rounding of the division
    let level = match rounding {
        Rounding::Nearest => x.round() as i32,
        Rounding::Stochastic { seed } => {
            let floor = x.floor();
            let frac = x - floor;
            // 24 uniform bits from the (seed, index) hash → u ∈ [0, 1).
            let u = (splitmix64(seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> 40)
                as f32
                / (1u64 << 24) as f32;
            floor as i32 + i32::from(u < frac)
        }
    };
    u8::try_from((level + 128).clamp(0, 255)).expect("clamped to u8 range")
}

/// Converts an `f32` to IEEE 754 binary16 bits with round-to-nearest-even
/// (overflow saturates to ±∞; NaN payloads are truncated but kept NaN).
#[must_use]
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let b = x.to_bits();
    let sign = ((b >> 16) & 0x8000) as u16;
    let exp = ((b >> 23) & 0xFF) as i32;
    let man = b & 0x007F_FFFF;
    if exp == 0xFF {
        // Inf stays inf; NaN keeps its top payload bits, forced non-zero.
        let payload = if man == 0 {
            0
        } else {
            0x0200 | ((man >> 13) as u16 & 0x03FF)
        };
        return sign | 0x7C00 | payload;
    }
    let e = exp - 127;
    if e >= -14 {
        if e > 15 {
            return sign | 0x7C00; // overflow → ±inf
        }
        // Normal target: pack exponent, then RNE the 23→10-bit mantissa.
        // A mantissa carry correctly rolls into the exponent (and into
        // the infinity encoding at the very top).
        let mut h = (((e + 15) as u32) << 10) | (man >> 13);
        let rem = man & 0x1FFF;
        if rem > 0x1000 || (rem == 0x1000 && h & 1 == 1) {
            h += 1;
        }
        return sign | (h as u16);
    }
    // Subnormal target: value = m × 2^(e−23) with the implicit bit, and
    // one f16-subnormal ulp is 2⁻²⁴, so the stored mantissa is
    // RNE(m >> (−e−1)). A round-up past 0x3FF lands exactly on the
    // smallest normal's encoding.
    let m = man | 0x0080_0000;
    let shift = (-e - 1) as u32;
    (sign as u32 | rne_shift(m, shift)) as u16
}

/// `round(m / 2^shift)` with ties to even, for `shift ≥ 1`.
fn rne_shift(m: u32, shift: u32) -> u32 {
    if shift > 31 {
        return 0; // m < 2^31 ⟹ m / 2^shift < 1/2: rounds to zero
    }
    let q = m >> shift;
    let rem = m & ((1u32 << shift) - 1);
    let half = 1u32 << (shift - 1);
    if rem > half || (rem == half && q & 1 == 1) {
        q + 1
    } else {
        q
    }
}

/// Converts IEEE 754 binary16 bits to the exactly-representable `f32`.
#[must_use]
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = u32::from(h & 0x8000) << 16;
    let exp = u32::from(h >> 10) & 0x1F;
    let man = u32::from(h & 0x03FF);
    let bits = if exp == 0 {
        if man == 0 {
            sign // ±0
        } else {
            // Subnormal: normalize into the f32 exponent range.
            let mut e: u32 = 113;
            let mut m = man;
            while m & 0x0400 == 0 {
                m <<= 1;
                e -= 1;
            }
            sign | (e << 23) | ((m & 0x03FF) << 13)
        }
    } else if exp == 31 {
        sign | 0x7F80_0000 | (man << 13) // ±inf / NaN
    } else {
        sign | ((exp + 112) << 23) | (man << 13)
    };
    f32::from_bits(bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_ids_round_trip() {
        for codec in [Codec::F32, Codec::F16, Codec::QuantU8] {
            assert_eq!(Codec::from_id(codec.id()).unwrap(), codec);
        }
        assert_eq!(Codec::from_id(3), Err(WireError::BadCodec(3)));
    }

    #[test]
    fn value_section_lengths() {
        assert_eq!(Codec::F32.value_section_len(10), 40);
        assert_eq!(Codec::F16.value_section_len(10), 20);
        assert_eq!(Codec::QuantU8.value_section_len(0), 0);
        assert_eq!(Codec::QuantU8.value_section_len(1), 5);
        assert_eq!(Codec::QuantU8.value_section_len(64), 68);
        assert_eq!(Codec::QuantU8.value_section_len(65), 73);
    }

    #[test]
    fn f32_round_trip_is_bit_exact() {
        let values = [0.0f32, -0.0, 1.5, -3.25e-12, f32::MAX, f32::MIN_POSITIVE];
        let mut buf = Vec::new();
        let n = encode_values(&mut buf, Codec::F32, Rounding::Nearest, &values);
        assert_eq!(n, 24);
        let mut back = Vec::new();
        decode_values_into(&mut back, Codec::F32, &buf, values.len());
        for (a, b) in values.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn f16_known_vectors() {
        assert_eq!(f32_to_f16_bits(1.0), 0x3C00);
        assert_eq!(f32_to_f16_bits(-2.0), 0xC000);
        assert_eq!(f32_to_f16_bits(65504.0), 0x7BFF); // f16 max
        assert_eq!(f32_to_f16_bits(65520.0), 0x7C00); // rounds to inf
        assert_eq!(f32_to_f16_bits(2.0f32.powi(-24)), 0x0001); // min subnormal
        assert_eq!(f32_to_f16_bits(2.0f32.powi(-25)), 0x0000); // ties to even 0
        assert_eq!(f32_to_f16_bits(1.5 * 2.0f32.powi(-25)), 0x0001);
        assert_eq!(f32_to_f16_bits(-0.0), 0x8000);
        assert_eq!(f16_bits_to_f32(0x3C00), 1.0);
        assert_eq!(f16_bits_to_f32(0x0001), 2.0f32.powi(-24));
        assert!(f16_bits_to_f32(0x7C00).is_infinite());
        assert!(f16_bits_to_f32(0x7C01).is_nan());
    }

    /// Every non-NaN f16 bit pattern converts to f32 and back unchanged
    /// (f16 values are exactly representable in f32, and RNE of an exact
    /// value is the identity).
    #[test]
    fn f16_exhaustive_round_trip() {
        for h in 0..=u16::MAX {
            let f = f16_bits_to_f32(h);
            if f.is_nan() {
                assert!(f16_bits_to_f32(f32_to_f16_bits(f)).is_nan());
                continue;
            }
            assert_eq!(f32_to_f16_bits(f), h, "pattern {h:#06x}");
        }
    }

    #[test]
    fn f16_error_bounded_in_normal_range() {
        let mut state = 7u64;
        for _ in 0..10_000 {
            state = splitmix64(state);
            // Uniform in [-8, 8): comfortably inside the f16 normal range.
            let v = ((state >> 40) as f32 / (1u64 << 24) as f32 - 0.5) * 16.0;
            let back = f16_bits_to_f32(f32_to_f16_bits(v));
            let tol = v.abs().max(f16_bits_to_f32(0x0400)) * 2.0f32.powi(-11);
            assert!(
                (v - back).abs() <= tol,
                "f16 error too large for {v}: {back}"
            );
        }
    }

    #[test]
    fn quant_nearest_error_within_half_scale() {
        let mut state = 99u64;
        let values: Vec<f32> = (0..1000)
            .map(|_| {
                state = splitmix64(state);
                ((state >> 40) as f32 / (1u64 << 24) as f32 - 0.5) * 2.0
            })
            .collect();
        let mut buf = Vec::new();
        encode_values(&mut buf, Codec::QuantU8, Rounding::Nearest, &values);
        let mut back = Vec::new();
        decode_values_into(&mut back, Codec::QuantU8, &buf, values.len());
        for (block, decoded) in values.chunks(QUANT_BLOCK).zip(back.chunks(QUANT_BLOCK)) {
            let scale = block.iter().fold(0.0f32, |m, v| m.max(v.abs())) / 127.0;
            for (v, d) in block.iter().zip(decoded) {
                // scale/2 plus a whisker of float slack for the two
                // divisions/multiplications around the integer level.
                assert!(
                    (v - d).abs() <= scale * 0.500_001,
                    "|{v} - {d}| > scale/2 = {}",
                    scale / 2.0
                );
            }
        }
    }

    #[test]
    fn quant_stochastic_error_below_scale_and_deterministic() {
        let mut state = 31u64;
        let values: Vec<f32> = (0..500)
            .map(|_| {
                state = splitmix64(state);
                ((state >> 40) as f32 / (1u64 << 24) as f32 - 0.5) * 6.0
            })
            .collect();
        let rounding = Rounding::Stochastic { seed: 0xDEAD };
        let mut a = Vec::new();
        encode_values(&mut a, Codec::QuantU8, rounding, &values);
        let mut b = Vec::new();
        encode_values(&mut b, Codec::QuantU8, rounding, &values);
        assert_eq!(a, b, "stochastic rounding must be deterministic in seed");
        let mut other = Vec::new();
        encode_values(
            &mut other,
            Codec::QuantU8,
            Rounding::Stochastic { seed: 0xBEEF },
            &values,
        );
        assert_ne!(a, other, "different seeds should round differently");
        let mut back = Vec::new();
        decode_values_into(&mut back, Codec::QuantU8, &a, values.len());
        for (block, decoded) in values.chunks(QUANT_BLOCK).zip(back.chunks(QUANT_BLOCK)) {
            let scale = block.iter().fold(0.0f32, |m, v| m.max(v.abs())) / 127.0;
            for (v, d) in block.iter().zip(decoded) {
                assert!((v - d).abs() < scale * 1.000_001, "|{v} - {d}| ≥ scale");
            }
        }
    }

    #[test]
    fn quant_all_zero_block_encodes_and_decodes_to_zero() {
        let values = vec![0.0f32; 70];
        let mut buf = Vec::new();
        encode_values(&mut buf, Codec::QuantU8, Rounding::Nearest, &values);
        let mut back = Vec::new();
        decode_values_into(&mut back, Codec::QuantU8, &buf, values.len());
        assert!(back.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn quant_stochastic_is_unbiased_on_average() {
        // Each block gets one 1.27 anchor (scale = 0.01) and 63 copies of
        // 0.005 — exactly halfway between levels 0 and 1, so stochastic
        // rounding must go up about half the time and the decoded mean of
        // the off-grid values must stay near 0.005.
        let blocks = 200;
        let mut vals = Vec::with_capacity(blocks * QUANT_BLOCK);
        for _ in 0..blocks {
            vals.push(1.27f32);
            vals.extend(std::iter::repeat_n(0.005f32, QUANT_BLOCK - 1));
        }
        let mut buf = Vec::new();
        encode_values(
            &mut buf,
            Codec::QuantU8,
            Rounding::Stochastic { seed: 12345 },
            &vals,
        );
        let mut back = Vec::new();
        decode_values_into(&mut back, Codec::QuantU8, &buf, vals.len());
        let (mut sum, mut count) = (0.0f64, 0usize);
        for (i, &v) in back.iter().enumerate() {
            if i % QUANT_BLOCK != 0 {
                sum += f64::from(v);
                count += 1;
            }
        }
        let mean = sum / count as f64;
        assert!(
            (mean - 0.005).abs() < 5e-4,
            "stochastic rounding biased: mean {mean}"
        );
    }
}
