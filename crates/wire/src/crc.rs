//! CRC-16/CCITT-FALSE frame checksum.
//!
//! Polynomial `0x1021`, initial value `0xFFFF`, no bit reflection, no
//! output XOR — the variant whose check value over the ASCII digits
//! `"123456789"` is `0x29B1`. Sixteen bits fit the fixed 16-byte header
//! (see [`crate::frame`]) while still detecting every single-bit flip,
//! every single flipped byte, and every burst of up to 16 bits — the
//! corruption classes the decode suite exercises.
//!
//! The hot path is sliced table lookup: CRC is linear over GF(2)
//! (`T[a ^ b] = T[a] ^ T[b]`), so four input bytes can be folded with
//! four *independent* table lookups per iteration — `TABLES[k][i]`
//! advances byte value `i` past `k` trailing zero bytes, and the 16-bit
//! state only feeds the first two lookups. That turns the classic
//! byte-at-a-time serial dependency (one lookup latency per byte) into
//! one short xor chain per 4 bytes, which matters because the checksum
//! is the dominant cost of encoding/decoding large frames.
//! [`crc16_bitwise`] is the definitional bit-at-a-time form, kept public
//! so benchmarks and tests can pin the fast path against it.

const POLY: u16 = 0x1021;
const INIT: u16 = 0xFFFF;

/// `TABLES[0][i]` is the classic CRC table (byte `i` folded into a zero
/// state); `TABLES[k][i]` additionally advances past `k` zero bytes.
const fn build_tables() -> [[u16; 256]; 4] {
    let mut tables = [[0u16; 256]; 4];
    let mut byte = 0usize;
    while byte < 256 {
        let mut crc = (byte as u16) << 8;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 0x8000 != 0 {
                (crc << 1) ^ POLY
            } else {
                crc << 1
            };
            bit += 1;
        }
        tables[0][byte] = crc;
        byte += 1;
    }
    let mut k = 1usize;
    while k < 4 {
        let mut i = 0usize;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev << 8) ^ tables[0][(prev >> 8) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
}

static TABLES: [[u16; 256]; 4] = build_tables();

/// Computes the CRC-16/CCITT-FALSE of `bytes` (table-driven).
///
/// # Example
/// ```
/// assert_eq!(gluefl_wire::crc::crc16(b"123456789"), 0x29B1);
/// ```
#[must_use]
pub fn crc16(bytes: &[u8]) -> u16 {
    crc16_update(INIT, bytes)
}

/// Continues a CRC-16 computation from `state` over `bytes`.
///
/// `crc16(ab)` equals `crc16_update(crc16_update(INIT, a), b)`, so a
/// frame's header and payload can be checksummed without concatenating
/// them into one buffer.
#[must_use]
pub fn crc16_update(state: u16, bytes: &[u8]) -> u16 {
    let mut crc = state;
    let mut chunks = bytes.chunks_exact(4);
    for chunk in &mut chunks {
        // Linearity: the 16-bit state xors into the first two byte
        // lanes; every lane then advances independently to the chunk
        // end. Four parallel lookups, one xor reduction.
        let x0 = ((crc >> 8) as u8) ^ chunk[0];
        let x1 = (crc as u8) ^ chunk[1];
        crc = TABLES[3][x0 as usize]
            ^ TABLES[2][x1 as usize]
            ^ TABLES[1][chunk[2] as usize]
            ^ TABLES[0][chunk[3] as usize];
    }
    for &b in chunks.remainder() {
        let idx = ((crc >> 8) ^ u16::from(b)) & 0xFF;
        crc = (crc << 8) ^ TABLES[0][idx as usize];
    }
    crc
}

/// Bit-at-a-time CRC-16/CCITT-FALSE — the definitional form the table
/// method is derived from. Used as the benchmark baseline and as the
/// cross-check in tests; byte-for-byte identical to [`crc16`].
#[must_use]
pub fn crc16_bitwise(bytes: &[u8]) -> u16 {
    let mut crc = INIT;
    for &b in bytes {
        crc ^= u16::from(b) << 8;
        for _ in 0..8 {
            crc = if crc & 0x8000 != 0 {
                (crc << 1) ^ POLY
            } else {
                crc << 1
            };
        }
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_check_value() {
        assert_eq!(crc16(b"123456789"), 0x29B1);
        assert_eq!(crc16(b""), 0xFFFF);
        assert_eq!(crc16(b"A"), 0xB915);
    }

    #[test]
    fn table_matches_bitwise_on_random_buffers() {
        let mut state = 0x1234_5678_9abc_def0u64;
        for len in 0..64 {
            let bytes: Vec<u8> = (0..len)
                .map(|_| {
                    state = state
                        .wrapping_mul(6_364_136_223_846_793_005)
                        .wrapping_add(1);
                    (state >> 56) as u8
                })
                .collect();
            assert_eq!(crc16(&bytes), crc16_bitwise(&bytes), "len={len}");
        }
    }

    #[test]
    fn update_is_concatenation() {
        let a = b"header bytes";
        let b = b"payload bytes";
        let whole: Vec<u8> = a.iter().chain(b.iter()).copied().collect();
        assert_eq!(crc16(&whole), crc16_update(crc16(a), b));
    }

    #[test]
    fn detects_single_bit_flips() {
        let bytes = b"the quick brown fox";
        let base = crc16(bytes);
        for i in 0..bytes.len() * 8 {
            let mut corrupted = bytes.to_vec();
            corrupted[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc16(&corrupted), base, "bit {i} flip undetected");
        }
    }
}
