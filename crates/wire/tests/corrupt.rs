//! Corrupt-input decode suite: every malformation class must produce a
//! *typed* [`WireError`] — never a panic, never a silent mis-decode.
//!
//! Structural corruptions (bad nnz, out-of-range indices, set padding
//! bits, …) are re-stamped with a valid checksum so the structural check
//! itself is exercised rather than the CRC.

use gluefl_tensor::BitMask;
use gluefl_wire::crc::{crc16, crc16_update};
use gluefl_wire::{
    decode_frame, decode_frame_prefix, Codec, FrameKind, FrameWriter, Rounding, WireError,
    WirePolicy, HEADER_BYTES, MAGIC, VERSION_ENTROPY,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Writer producing the v1 (legacy-layout) frames these corruption
/// suites poke at byte-by-byte.
fn legacy(codec: Codec) -> FrameWriter {
    FrameWriter::new(WirePolicy::legacy(codec))
}

/// Recomputes a (single-frame) buffer's checksum after a deliberate
/// structural mutation.
fn restamp(buf: &mut [u8]) {
    let crc = crc16_update(crc16(&buf[..14]), &buf[HEADER_BYTES..]);
    buf[14..16].copy_from_slice(&crc.to_le_bytes());
}

fn sample_sparse_index() -> Vec<u8> {
    // 4 of 1000 coordinates → index-list positions.
    let mut buf = Vec::new();
    let _ = legacy(Codec::F32).sparse(
        &mut buf,
        5,
        Rounding::Nearest,
        1000,
        &[10, 20, 300, 999],
        &[1.0, -2.0, 3.0, -4.0],
    );
    buf
}

fn sample_sparse_bitmap() -> Vec<u8> {
    // 60 of 100 coordinates → bitmap positions.
    let indices: Vec<u32> = (0..60).map(|i| i + (i / 3)).collect();
    let values: Vec<f32> = indices.iter().map(|&i| i as f32).collect();
    let mut buf = Vec::new();
    let _ = legacy(Codec::F32).sparse(&mut buf, 5, Rounding::Nearest, 100, &indices, &values);
    buf
}

fn sample_sparse_delta() -> Vec<u8> {
    // Irregular gaps (one spanning a multi-byte varint) over a huge dim:
    // the delta layout wins by orders of magnitude.
    let indices = [7u32, 9, 40, 400, 90_000];
    let values = [1.0f32, -2.0, 3.0, -4.0, 5.0];
    let mut buf = Vec::new();
    let _ = FrameWriter::new(WirePolicy::entropy(Codec::F32)).sparse(
        &mut buf,
        5,
        Rounding::Nearest,
        100_000,
        &indices,
        &values,
    );
    assert_eq!(decode_frame(&buf).unwrap().kind, FrameKind::SparseDelta);
    buf
}

fn sample_mask_rle() -> Vec<u8> {
    // Blocky mask (64-wide runs every 512): a handful of varint run
    // pairs against a 500-byte bitmap.
    let mask = BitMask::from_indices(4000, (0..4000).filter(|i| i % 512 < 64));
    let mut buf = Vec::new();
    let _ = FrameWriter::new(WirePolicy::entropy(Codec::F32)).mask(&mut buf, 5, &mask);
    assert_eq!(decode_frame(&buf).unwrap().kind, FrameKind::MaskRle);
    buf
}

/// A handcrafted v2 frame: 16-byte header for `kind_id` (codec F32)
/// followed by `payload`, checksum stamped valid — the harness for
/// structural corruptions inside entropy position sections.
fn v2_frame(kind_id: u8, dim: u32, nnz: u32, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.push(MAGIC);
    buf.push((VERSION_ENTROPY << 6) | ((kind_id & 0x07) << 3) | (kind_id >> 3));
    buf.extend_from_slice(&5u32.to_le_bytes());
    buf.extend_from_slice(&dim.to_le_bytes());
    buf.extend_from_slice(&nnz.to_le_bytes());
    buf.extend_from_slice(&[0, 0]);
    buf.extend_from_slice(payload);
    restamp(&mut buf);
    buf
}

#[test]
fn truncation_at_every_length_is_a_typed_error() {
    for buf in [
        sample_sparse_index(),
        sample_sparse_bitmap(),
        sample_sparse_delta(),
        sample_mask_rle(),
        {
            let mut b = Vec::new();
            let _ = legacy(Codec::QuantU8).dense(&mut b, 0, Rounding::Nearest, &[1.0; 100]);
            b
        },
    ] {
        for cut in 0..buf.len() {
            match decode_frame(&buf[..cut]) {
                Err(WireError::Truncated { needed, got }) => {
                    assert!(got < needed, "cut={cut}");
                }
                Err(other) => panic!("cut={cut}: expected Truncated, got {other:?}"),
                Ok(_) => panic!("cut={cut}: truncated frame decoded"),
            }
        }
        assert!(decode_frame(&buf).is_ok());
    }
}

#[test]
fn flipped_checksum_bytes_are_rejected() {
    let buf = sample_sparse_index();
    for byte in 14..16 {
        for bit in 0..8 {
            let mut bad = buf.clone();
            bad[byte] ^= 1 << bit;
            assert!(
                matches!(decode_frame(&bad), Err(WireError::ChecksumMismatch { .. })),
                "flip of checksum byte {byte} bit {bit} undetected"
            );
        }
    }
}

#[test]
fn any_single_payload_bit_flip_is_detected() {
    let buf = sample_sparse_bitmap();
    for i in HEADER_BYTES * 8..buf.len() * 8 {
        let mut bad = buf.clone();
        bad[i / 8] ^= 1 << (i % 8);
        assert!(
            decode_frame(&bad).is_err(),
            "payload bit {i} flip undetected"
        );
    }
}

#[test]
fn bad_magic_is_typed() {
    let mut bad = sample_sparse_index();
    bad[0] = 0x00;
    assert_eq!(decode_frame(&bad).unwrap_err(), WireError::BadMagic(0x00));
}

#[test]
fn bad_version_and_reserved_bit_are_typed() {
    // Version field 2 instead of 1.
    let mut bad = sample_sparse_index();
    bad[1] = (bad[1] & 0x3F) | (2 << 6);
    assert!(matches!(decode_frame(&bad), Err(WireError::BadVersion(_))));
    // Reserved low bit set.
    let mut bad = sample_sparse_index();
    bad[1] |= 1;
    assert!(matches!(decode_frame(&bad), Err(WireError::BadVersion(_))));
}

#[test]
fn bad_kind_and_codec_are_typed() {
    // Kind 7 is unassigned.
    let mut bad = sample_sparse_index();
    bad[1] = (bad[1] & !(0x07 << 3)) | (7 << 3);
    restamp(&mut bad);
    assert_eq!(decode_frame(&bad).unwrap_err(), WireError::BadKind(7));
    // Codec 3 is unassigned.
    let mut bad = sample_sparse_index();
    bad[1] = (bad[1] & !(0x03 << 1)) | (3 << 1);
    restamp(&mut bad);
    assert_eq!(decode_frame(&bad).unwrap_err(), WireError::BadCodec(3));
    // Mask frames are codec-free: a declared F16 codec is non-canonical.
    let mut mask_buf = Vec::new();
    let _ = legacy(Codec::F32).mask(&mut mask_buf, 0, &BitMask::from_indices(40, [1usize, 7]));
    mask_buf[1] = (mask_buf[1] & !(0x03 << 1)) | (Codec::F16.id() << 1);
    restamp(&mut mask_buf);
    assert_eq!(decode_frame(&mask_buf).unwrap_err(), WireError::BadCodec(1));
}

#[test]
fn nnz_dim_mismatches_are_typed() {
    // nnz > dim in the header (valid checksum): structural error.
    let mut bad = sample_sparse_index();
    bad[10..14].copy_from_slice(&2000u32.to_le_bytes());
    restamp(&mut bad);
    assert_eq!(
        decode_frame(&bad).unwrap_err(),
        WireError::NnzExceedsDim {
            nnz: 2000,
            dim: 1000
        }
    );
    // Dense frame whose nnz disagrees with dim.
    let mut dense = Vec::new();
    let _ = legacy(Codec::F32).dense(&mut dense, 0, Rounding::Nearest, &[1.0; 10]);
    dense[10..14].copy_from_slice(&9u32.to_le_bytes());
    restamp(&mut dense);
    assert_eq!(
        decode_frame(&dense).unwrap_err(),
        WireError::NnzMismatch {
            declared: 9,
            actual: 10
        }
    );
    // Bitmap popcount that disagrees with the declared nnz: flip a clear
    // bitmap bit (not a padding bit) and restamp.
    let mut bm = sample_sparse_bitmap();
    let bitmap_start = HEADER_BYTES;
    // Position 2 is absent from `indices` (0,1,2→0,1,2? indices are
    // i + i/3: 0,1,2,4,5,6,8,… — position 3 is absent).
    bm[bitmap_start] |= 1 << 3;
    restamp(&mut bm);
    assert_eq!(
        decode_frame(&bm).unwrap_err(),
        WireError::NnzMismatch {
            declared: 60,
            actual: 61
        }
    );
}

#[test]
fn bitmap_padding_bits_must_be_zero() {
    // dim = 100 → 13 bitmap bytes, 4 padding bits in the last byte.
    let mut bm = sample_sparse_bitmap();
    let last_bitmap_byte = HEADER_BYTES + 100usize.div_ceil(8) - 1;
    bm[last_bitmap_byte] |= 1 << 6; // bit 102 > dim
    restamp(&mut bm);
    assert_eq!(decode_frame(&bm).unwrap_err(), WireError::NonZeroPadding);
}

#[test]
fn out_of_range_and_unsorted_indices_are_typed() {
    // Overwrite the last index (999) with 1000 == dim.
    let mut bad = sample_sparse_index();
    let idx_start = HEADER_BYTES + 3 * 4;
    bad[idx_start..idx_start + 4].copy_from_slice(&1000u32.to_le_bytes());
    restamp(&mut bad);
    assert_eq!(
        decode_frame(&bad).unwrap_err(),
        WireError::IndexOutOfRange {
            index: 1000,
            dim: 1000
        }
    );
    // Swap the first two indices: 20, 10, …
    let mut bad = sample_sparse_index();
    let a = HEADER_BYTES;
    bad[a..a + 4].copy_from_slice(&20u32.to_le_bytes());
    bad[a + 4..a + 8].copy_from_slice(&10u32.to_le_bytes());
    restamp(&mut bad);
    assert_eq!(
        decode_frame(&bad).unwrap_err(),
        WireError::IndicesNotIncreasing { position: 1 }
    );
    // Duplicate indices are also "not strictly increasing".
    let mut bad = sample_sparse_index();
    bad[a + 4..a + 8].copy_from_slice(&10u32.to_le_bytes());
    restamp(&mut bad);
    assert_eq!(
        decode_frame(&bad).unwrap_err(),
        WireError::IndicesNotIncreasing { position: 1 }
    );
}

/// Every value has exactly one canonical LEB128 encoding; padded or
/// over-length varints in an entropy position section are typed, with
/// the offending byte offset.
#[test]
fn overlong_varints_are_typed() {
    // Expand the real frame's first (single-byte) delta varint into a
    // padded two-byte encoding of the same value.
    let mut bad = sample_sparse_delta();
    bad[HEADER_BYTES] = 0x87; // 7, with a continuation bit…
    bad.insert(HEADER_BYTES + 1, 0x00); // …and a zero tail
    restamp(&mut bad);
    assert_eq!(
        decode_frame(&bad).unwrap_err(),
        WireError::OverlongVarint {
            offset: HEADER_BYTES
        }
    );
    // A varint that never terminates within the 5-byte cap.
    let mut bad = sample_sparse_delta();
    bad.splice(HEADER_BYTES..=HEADER_BYTES, [0xFF; 5]);
    restamp(&mut bad);
    assert_eq!(
        decode_frame(&bad).unwrap_err(),
        WireError::OverlongVarint {
            offset: HEADER_BYTES
        }
    );
    // The same canonicality check guards run-length sections.
    let bad = v2_frame(8, 64, 3, &[0x82, 0x00]);
    assert_eq!(
        decode_frame(&bad).unwrap_err(),
        WireError::OverlongVarint {
            offset: HEADER_BYTES
        }
    );
}

/// Run-length sections admit only positive runs (every ones-run, and
/// every zeros-run after the first); zero-length runs are typed with
/// their byte offset.
#[test]
fn zero_length_runs_are_typed() {
    // A zero-length ones-run in the first pair.
    assert_eq!(
        decode_frame(&v2_frame(8, 64, 3, &[2, 0])).unwrap_err(),
        WireError::ZeroRun {
            offset: HEADER_BYTES + 1
        }
    );
    // A zero-length zeros-run after the first pair (two adjacent
    // ones-runs should have been one).
    assert_eq!(
        decode_frame(&v2_frame(8, 64, 5, &[2, 3, 0, 2])).unwrap_err(),
        WireError::ZeroRun {
            offset: HEADER_BYTES + 2
        }
    );
    // A *leading* zeros-run of zero is canonical — the mask starts at
    // position 0.
    let ok = v2_frame(8, 64, 4, &[0, 4]);
    let frame = decode_frame(&ok).unwrap();
    assert_eq!(frame.kind, FrameKind::MaskRle);
    let mut mask = BitMask::zeros(64);
    frame.mask_into(&mut mask);
    assert_eq!(mask.iter_ones().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    // The same scanner guards the sparse RLE kind.
    assert_eq!(
        decode_frame(&v2_frame(9, 64, 3, &[2, 0])).unwrap_err(),
        WireError::ZeroRun {
            offset: HEADER_BYTES + 1
        }
    );
}

#[test]
fn ternary_sign_padding_must_be_zero() {
    let mut buf = Vec::new();
    let _ = legacy(Codec::F32).ternary(&mut buf, 0, 500, 0.25, &[1, 2, 3], &[true, false, true]);
    // Sign byte is the last payload byte (3 signs → 5 padding bits).
    let last = buf.len() - 1;
    buf[last] |= 1 << 5;
    restamp(&mut buf);
    assert_eq!(decode_frame(&buf).unwrap_err(), WireError::NonZeroPadding);
}

#[test]
fn trailing_bytes_are_typed_but_prefix_decoding_streams() {
    let mut buf = sample_sparse_index();
    buf.extend_from_slice(&[0xAB, 0xCD, 0xEF]);
    assert_eq!(
        decode_frame(&buf).unwrap_err(),
        WireError::TrailingBytes { extra: 3 }
    );
    let (frame, rest) = decode_frame_prefix(&buf).unwrap();
    assert_eq!(frame.nnz, 4);
    assert_eq!(rest, &[0xAB, 0xCD, 0xEF]);
}

#[test]
fn known_mask_nnz_is_bounded_by_dim() {
    let mut buf = Vec::new();
    let _ = legacy(Codec::F32).known_mask(&mut buf, 0, Rounding::Nearest, 8, &[1.0; 8]);
    buf[10..14].copy_from_slice(&9u32.to_le_bytes());
    restamp(&mut buf);
    assert_eq!(
        decode_frame(&buf).unwrap_err(),
        WireError::NnzExceedsDim { nnz: 9, dim: 8 }
    );
}

/// Random buffers and random mutations of valid frames (v1 and the v2
/// entropy layouts alike) must always return (not panic), whatever the
/// verdict — ≥4096 mutation cases plus 2048 raw-noise buffers.
#[test]
fn decode_fuzz_never_panics() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for _ in 0..2048 {
        let len = rng.gen_range(0..200);
        let buf: Vec<u8> = (0..len).map(|_| rng.gen_range(0u8..=u8::MAX)).collect();
        let _ = decode_frame(&buf);
    }
    let templates = [
        sample_sparse_index(),
        sample_sparse_bitmap(),
        sample_sparse_delta(),
        sample_mask_rle(),
    ];
    for _ in 0..4096 {
        let mut buf = templates[rng.gen_range(0..templates.len())].clone();
        for _ in 0..rng.gen_range(1..6) {
            let i = rng.gen_range(0..buf.len());
            buf[i] = rng.gen_range(0u8..=u8::MAX);
        }
        if rng.gen::<bool>() {
            restamp(&mut buf);
        }
        if let Ok(frame) = decode_frame(&buf) {
            // A surviving frame must still be internally consistent
            // enough for the accessors not to misbehave.
            let mut vals = Vec::new();
            frame.values_into(&mut vals);
            assert!(vals.len() <= frame.dim);
        }
    }
}
