//! Property tests pinning the codec to the analytic cost model and to
//! its round-trip guarantees:
//!
//! * **F32 length parity** — for every frame kind, the encoded frame
//!   length equals the corresponding `WireCost` total (including
//!   `HEADER_BYTES`) across adversarial `dim`/`nnz` combinations;
//! * **F32 bit-exactness** — encode → decode reproduces indices and value
//!   bits exactly;
//! * **F16 / QuantU8 bounded error** — decoded values stay within the
//!   codec's documented error envelope (relative 2⁻¹¹ for F16; `scale/2`
//!   nearest / `scale` stochastic per quantization block);
//! * **Entropy length parity** — under `WirePolicy::entropy` the encoded
//!   frame length equals the `FrameWriter` predictor exactly, the chosen
//!   position section equals its analytic cost
//!   ([`delta_section_len`] / [`rle_section_len`]), never exceeds the
//!   legacy layout, and the round trip stays bit-exact.

use gluefl_tensor::wire::{WireCost, HEADER_BYTES};
use gluefl_tensor::BitMask;
use gluefl_wire::{
    decode_frame, delta_section_len, rle_section_len, rle_section_len_from_indices, Codec,
    FrameKind, FrameWriter, Rounding, WirePolicy, QUANT_BLOCK,
};
use proptest::prelude::*;

/// Writer producing the v1 (legacy-layout) frames the analytic length
/// laws are stated over.
fn legacy(codec: Codec) -> FrameWriter {
    FrameWriter::new(WirePolicy::legacy(codec))
}

/// Sorted unique indices: a subset of `0..dim` drawn from per-position
/// coin flips, so nnz spans empty → full.
fn sparse_case(dim: usize, ones: &[bool]) -> (Vec<u32>, Vec<f32>) {
    let indices: Vec<u32> = (0..dim)
        .filter(|&i| ones[i % ones.len().max(1)] || i % 97 == 3)
        .map(|i| u32::try_from(i).unwrap())
        .collect();
    let values: Vec<f32> = indices.iter().map(|&i| (i as f32 * 0.37).sin()).collect();
    (indices, values)
}

proptest! {
    /// Dense F32 frames cost exactly `WireCost::dense(dim)` total bytes.
    #[test]
    fn dense_f32_length_matches_analytic(dim in 0usize..3000) {
        let values: Vec<f32> = (0..dim).map(|i| i as f32 - 7.5).collect();
        let mut buf = Vec::new();
        let n = legacy(Codec::F32).dense(&mut buf, 1, Rounding::Nearest, &values);
        prop_assert_eq!(n as u64, WireCost::dense(dim).total_bytes());
        prop_assert_eq!(n, buf.len());
    }

    /// Sparse F32 frames cost exactly `WireCost::sparse(dim, nnz)` total
    /// bytes — including the bitmap/index-list tie-break — and known-mask
    /// frames exactly `WireCost::known_mask(nnz)`.
    #[test]
    fn sparse_f32_length_matches_analytic(
        dim in 1usize..4000,
        ones in proptest::collection::vec(any::<bool>(), 1..64),
    ) {
        let (indices, values) = sparse_case(dim, &ones);
        let nnz = indices.len();
        let mut buf = Vec::new();
        let n = legacy(Codec::F32).sparse(&mut buf, 0, Rounding::Nearest, dim, &indices, &values);
        prop_assert_eq!(n as u64, WireCost::sparse(dim, nnz).total_bytes(),
            "dim={} nnz={}", dim, nnz);

        let mut kbuf = Vec::new();
        let k = legacy(Codec::F32).known_mask(&mut kbuf, 0, Rounding::Nearest, dim, &values);
        prop_assert_eq!(k as u64, WireCost::known_mask(nnz).total_bytes());
    }

    /// Mask broadcast frames cost exactly the analytic per-sync bitmap
    /// bytes: `ceil(dim/8) + HEADER_BYTES`.
    #[test]
    fn mask_length_matches_analytic(dim in 1usize..4000, stride in 1usize..50) {
        let mask = BitMask::from_indices(dim, (0..dim).step_by(stride));
        let mut buf = Vec::new();
        let n = legacy(Codec::F32).mask(&mut buf, 0, &mask);
        prop_assert_eq!(n as u64, (dim as u64).div_ceil(8) + HEADER_BYTES);
    }

    /// Ternary frames cost exactly the analytic `TernaryUpdate` wire
    /// cost: sparse position bytes + one sign bit per value + one µ.
    #[test]
    fn ternary_length_matches_analytic(
        dim in 1usize..4000,
        ones in proptest::collection::vec(any::<bool>(), 1..64),
    ) {
        let (indices, _) = sparse_case(dim, &ones);
        let nnz = indices.len();
        let signs: Vec<bool> = (0..nnz).map(|j| j % 2 == 0).collect();
        let mut buf = Vec::new();
        let n = legacy(Codec::F32).ternary(&mut buf, 0, dim, 0.5, &indices, &signs);
        let analytic = WireCost {
            value_bytes: (nnz as u64).div_ceil(8) + 4,
            position_bytes: WireCost::sparse(dim, nnz).position_bytes,
            encoding: gluefl_tensor::WireEncoding::IndexList,
        };
        prop_assert_eq!(n as u64, analytic.total_bytes());
    }

    /// F32 sparse round trip is bit-exact in both indices and values.
    #[test]
    fn sparse_f32_round_trip_bit_exact(
        dim in 1usize..4000,
        ones in proptest::collection::vec(any::<bool>(), 1..64),
    ) {
        let (indices, values) = sparse_case(dim, &ones);
        let mut buf = Vec::new();
        let _ = legacy(Codec::F32).sparse(&mut buf, 3, Rounding::Nearest, dim, &indices, &values);
        let frame = decode_frame(&buf).unwrap();
        prop_assert_eq!(frame.round, 3);
        prop_assert_eq!(frame.dim, dim);
        let (mut ix, mut vals) = (Vec::new(), Vec::new());
        frame.indices_into(&mut ix);
        frame.values_into(&mut vals);
        prop_assert_eq!(ix, indices);
        prop_assert_eq!(vals.len(), values.len());
        prop_assert!(vals.iter().zip(&values).all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    /// Dense F16 round trip keeps every value within the half-precision
    /// error envelope; QuantU8 stays within scale/2 (nearest) resp. scale
    /// (stochastic) per block.
    #[test]
    fn lossy_codecs_bounded_error(dim in 1usize..2000, seed in any::<u64>()) {
        let values: Vec<f32> = (0..dim)
            .map(|i| ((i as f32 + 1.0) * 0.61).sin() * 3.0)
            .collect();
        // F16.
        let mut hbuf = Vec::new();
        let _ = legacy(Codec::F16).dense(&mut hbuf, 0, Rounding::Nearest, &values);
        let mut back = Vec::new();
        decode_frame(&hbuf).unwrap().values_into(&mut back);
        let min_normal = 2.0f32.powi(-14); // smallest normal f16
        for (v, d) in values.iter().zip(&back) {
            let tol = v.abs().max(min_normal) * 2.0f32.powi(-11) * 1.000_001;
            prop_assert!((v - d).abs() <= tol, "f16 |{} - {}| > {}", v, d, tol);
        }
        // QuantU8, both rounding modes.
        for (rounding, bound) in [
            (Rounding::Nearest, 0.5f32),
            (Rounding::Stochastic { seed }, 1.0f32),
        ] {
            let mut qbuf = Vec::new();
            let _ = legacy(Codec::QuantU8).dense(&mut qbuf, 0, rounding, &values);
            let mut back = Vec::new();
            decode_frame(&qbuf).unwrap().values_into(&mut back);
            for (block, decoded) in values.chunks(QUANT_BLOCK).zip(back.chunks(QUANT_BLOCK)) {
                let scale = block.iter().fold(0.0f32, |m, v| m.max(v.abs())) / 127.0;
                for (v, d) in block.iter().zip(decoded) {
                    prop_assert!(
                        (v - d).abs() <= scale * (bound + 1e-5),
                        "quant |{} - {}| > {}·scale", v, d, bound
                    );
                }
            }
        }
    }

    /// Entropy sparse frames: encoded length ≡ the writer's exact
    /// predictor ≡ header + the chosen position section's analytic cost
    /// + values, never above the legacy layout, and the round trip is
    /// bit-exact whichever layout the cost rule picked.
    #[test]
    fn entropy_sparse_length_matches_analytic_and_round_trips(
        dim in 1usize..4000,
        ones in proptest::collection::vec(any::<bool>(), 1..64),
    ) {
        let (indices, values) = sparse_case(dim, &ones);
        let nnz = indices.len();
        let policy = WirePolicy::entropy(Codec::F32);
        let writer = FrameWriter::new(policy);
        let mut buf = Vec::new();
        let n = writer.sparse(&mut buf, 2, Rounding::Nearest, dim, &indices, &values);
        prop_assert_eq!(n, buf.len());
        prop_assert_eq!(n as u64, writer.sparse_len(dim, &indices));
        prop_assert_eq!(
            n as u64,
            HEADER_BYTES + policy.position_section_len(dim, &indices) + 4 * nnz as u64,
            "dim={} nnz={}", dim, nnz
        );
        prop_assert!(n as u64 <= WireCost::sparse(dim, nnz).total_bytes(),
            "entropy layout may never lose to legacy: dim={} nnz={}", dim, nnz);

        let frame = decode_frame(&buf).unwrap();
        match frame.kind {
            FrameKind::SparseDelta => prop_assert_eq!(
                policy.position_section_len(dim, &indices),
                delta_section_len(&indices)
            ),
            FrameKind::SparseRle => prop_assert_eq!(
                policy.position_section_len(dim, &indices),
                rle_section_len_from_indices(&indices)
            ),
            FrameKind::SparseBitmap | FrameKind::SparseIndex => {}
            other => prop_assert!(false, "unexpected sparse kind {:?}", other),
        }
        let (mut ix, mut vals) = (Vec::new(), Vec::new());
        frame.indices_into(&mut ix);
        frame.values_into(&mut vals);
        prop_assert_eq!(ix, indices);
        prop_assert!(vals.iter().zip(&values).all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    /// Entropy mask frames: encoded length ≡ the `mask_len` predictor;
    /// when the run-length section wins it costs exactly
    /// `rle_section_len(mask)`, it never exceeds the v1 bitmap, and the
    /// decoded mask is identical.
    #[test]
    fn entropy_mask_length_matches_analytic_and_round_trips(
        dim in 1usize..4000,
        run in 1usize..80,
        gap in 0usize..80,
    ) {
        let period = run + gap;
        let mask = BitMask::from_indices(dim, (0..dim).filter(|i| i % period < run));
        let writer = FrameWriter::new(WirePolicy::entropy(Codec::F32));
        let mut buf = Vec::new();
        let n = writer.mask(&mut buf, 1, &mask);
        prop_assert_eq!(n, buf.len());
        prop_assert_eq!(n as u64, writer.mask_len(&mask));
        let bitmap_frame = (dim as u64).div_ceil(8) + HEADER_BYTES;
        prop_assert!(n as u64 <= bitmap_frame);

        let frame = decode_frame(&buf).unwrap();
        match frame.kind {
            FrameKind::MaskRle => {
                prop_assert_eq!(n as u64, HEADER_BYTES + rle_section_len(&mask));
                prop_assert!((n as u64) < bitmap_frame, "RLE must be strictly cheaper");
            }
            FrameKind::Mask => prop_assert_eq!(n as u64, bitmap_frame),
            other => prop_assert!(false, "unexpected mask kind {:?}", other),
        }
        let mut back = BitMask::zeros(dim);
        frame.mask_into(&mut back);
        prop_assert_eq!(back, mask);
    }

    /// Stochastic QuantU8 encoding is a pure function of the seed: same
    /// seed → identical bytes, different seed → (almost surely) not.
    #[test]
    fn stochastic_encoding_deterministic_in_seed(seed in any::<u64>()) {
        let values: Vec<f32> = (0..300).map(|i| (i as f32 * 0.913).cos()).collect();
        let enc = |s: u64| {
            let mut buf = Vec::new();
            let _ = legacy(Codec::QuantU8).dense(&mut buf, 0, Rounding::Stochastic { seed: s }, &values);
            buf
        };
        prop_assert_eq!(enc(seed), enc(seed));
        prop_assert_ne!(enc(seed), enc(seed ^ 0x1234_5678_9abc_def0));
    }
}

/// Degenerate shapes the random generators may miss: nnz 0, nnz = dim,
/// dim exactly at the bitmap/index-list break-even, single position.
#[test]
fn adversarial_corner_shapes_match_analytic() {
    let cases: &[(usize, usize)] = &[
        (1, 0),
        (1, 1),
        (8, 8),
        (3200, 100), // tie: bitmap == 4·nnz
        (3200, 99),  // just below: index list
        (3200, 101), // just above: bitmap
        (64, 64),
        (65, 1),
        (1_000_000, 0),
    ];
    for &(dim, nnz) in cases {
        let indices: Vec<u32> = (0..nnz)
            .map(|j| u32::try_from(j * (dim / nnz.max(1))).unwrap())
            .collect();
        let values: Vec<f32> = indices.iter().map(|&i| i as f32).collect();
        let mut buf = Vec::new();
        let n = legacy(Codec::F32).sparse(&mut buf, 0, Rounding::Nearest, dim, &indices, &values);
        assert_eq!(
            n as u64,
            WireCost::sparse(dim, nnz).total_bytes(),
            "dim={dim} nnz={nnz}"
        );
        let frame = decode_frame(&buf).unwrap();
        let mut vals = Vec::new();
        frame.values_into(&mut vals);
        assert_eq!(vals, values, "dim={dim} nnz={nnz}");
    }
}
