//! Dataset profiles mirroring the paper's three tasks (§5.1, Table 2).

use crate::dataset::DatasetConfig;

/// The three tasks of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetProfile {
    /// FEMNIST: 62-class image classification, 2 800 clients, K = 30,
    /// target Top-1 accuracy 73.3%.
    Femnist,
    /// OpenImage: 596-class image classification, 10 625 clients, K = 100,
    /// target Top-5 accuracy 66.8%.
    OpenImage,
    /// Google Speech commands: 35-class audio classification, 2 066
    /// clients, K = 30, target Top-1 accuracy 61.2%.
    GoogleSpeech,
}

impl DatasetProfile {
    /// Number of classes in the real dataset.
    #[must_use]
    pub fn classes(self) -> usize {
        match self {
            DatasetProfile::Femnist => 62,
            DatasetProfile::OpenImage => 596,
            DatasetProfile::GoogleSpeech => 35,
        }
    }

    /// Number of clients at paper scale.
    #[must_use]
    pub fn paper_clients(self) -> usize {
        match self {
            DatasetProfile::Femnist => 2_800,
            DatasetProfile::OpenImage => 10_625,
            DatasetProfile::GoogleSpeech => 2_066,
        }
    }

    /// Clients sampled per round at paper scale (§5.1).
    #[must_use]
    pub fn paper_round_size(self) -> usize {
        match self {
            DatasetProfile::Femnist => 30,
            DatasetProfile::OpenImage => 100,
            DatasetProfile::GoogleSpeech => 30,
        }
    }

    /// The paper's target accuracy for Table 2 (Top-1, except Top-5 for
    /// OpenImage).
    #[must_use]
    pub fn target_accuracy(self) -> f64 {
        match self {
            DatasetProfile::Femnist => 0.733,
            DatasetProfile::OpenImage => 0.668,
            DatasetProfile::GoogleSpeech => 0.612,
        }
    }

    /// Whether Table 2 reports Top-5 (true) or Top-1 (false) accuracy.
    #[must_use]
    pub fn uses_top5(self) -> bool {
        matches!(self, DatasetProfile::OpenImage)
    }

    /// Initial client learning rate (§5.1).
    #[must_use]
    pub fn initial_lr(self) -> f32 {
        match self {
            DatasetProfile::Femnist => 0.01,
            DatasetProfile::OpenImage => 0.05,
            DatasetProfile::GoogleSpeech => 0.01,
        }
    }

    /// Short name used in tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DatasetProfile::Femnist => "femnist",
            DatasetProfile::OpenImage => "openimage",
            DatasetProfile::GoogleSpeech => "google_speech",
        }
    }

    /// All profiles, in the paper's table order.
    #[must_use]
    pub fn all() -> [DatasetProfile; 3] {
        [
            DatasetProfile::Femnist,
            DatasetProfile::OpenImage,
            DatasetProfile::GoogleSpeech,
        ]
    }

    /// A [`DatasetConfig`] for this profile at `scale ∈ (0, 1]` of the
    /// paper's client count (feature dimension and class count are kept at
    /// full fidelity; only the population shrinks).
    ///
    /// # Panics
    /// Panics if `scale` is not in `(0, 1]`.
    #[must_use]
    pub fn config(self, scale: f64) -> DatasetConfig {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0,1]");
        let clients = ((self.paper_clients() as f64 * scale).round() as usize).max(4);
        DatasetConfig {
            classes: self.classes(),
            clients,
            feature_dim: 64,
            mean_samples_per_client: 90.0,
            min_samples_per_client: 22,
            max_samples_per_client: 400,
            classes_per_client_mean: 4.0,
            noise_sigma: match self {
                // Calibrated so the three tasks have distinct difficulty,
                // ordered like the paper's target accuracies.
                DatasetProfile::Femnist => 1.0,
                DatasetProfile::OpenImage => 1.3,
                DatasetProfile::GoogleSpeech => 1.5,
            },
            client_bias_sigma: 0.25,
            test_samples: 2_000,
        }
    }
}

impl std::str::FromStr for DatasetProfile {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "femnist" => Ok(DatasetProfile::Femnist),
            "openimage" => Ok(DatasetProfile::OpenImage),
            "google_speech" | "speech" => Ok(DatasetProfile::GoogleSpeech),
            other => Err(format!(
                "unknown dataset '{other}' (expected femnist|openimage|google_speech)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        assert_eq!(DatasetProfile::Femnist.classes(), 62);
        assert_eq!(DatasetProfile::OpenImage.paper_clients(), 10_625);
        assert_eq!(DatasetProfile::GoogleSpeech.paper_round_size(), 30);
        assert!(DatasetProfile::OpenImage.uses_top5());
        assert!(!DatasetProfile::Femnist.uses_top5());
    }

    #[test]
    fn config_scales_clients_only() {
        let full = DatasetProfile::Femnist.config(1.0);
        let tenth = DatasetProfile::Femnist.config(0.1);
        assert_eq!(full.clients, 2_800);
        assert_eq!(tenth.clients, 280);
        assert_eq!(full.classes, tenth.classes);
        assert_eq!(full.feature_dim, tenth.feature_dim);
    }

    #[test]
    fn parse_roundtrip() {
        for p in DatasetProfile::all() {
            assert_eq!(p.name().parse::<DatasetProfile>().unwrap(), p);
        }
        assert!("cifar".parse::<DatasetProfile>().is_err());
    }

    #[test]
    #[should_panic(expected = "scale must be in (0,1]")]
    fn rejects_zero_scale() {
        let _ = DatasetProfile::Femnist.config(0.0);
    }
}
