//! Synthetic federated dataset generation.

use gluefl_tensor::rng::{derive_seed, seeded_rng};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generation parameters for a [`SyntheticFlDataset`].
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetConfig {
    /// Number of classes.
    pub classes: usize,
    /// Number of clients `N`.
    pub clients: usize,
    /// Feature dimension of every sample.
    pub feature_dim: usize,
    /// Median of the log-normal per-client sample count.
    pub mean_samples_per_client: f64,
    /// Lower clamp on per-client samples (FedScale default: 22).
    pub min_samples_per_client: usize,
    /// Upper clamp on per-client samples.
    pub max_samples_per_client: usize,
    /// Mean number of distinct classes a client holds (label skew).
    pub classes_per_client_mean: f64,
    /// Standard deviation of the within-class feature noise.
    pub noise_sigma: f64,
    /// Standard deviation of the per-client feature bias.
    pub client_bias_sigma: f64,
    /// Size of the held-out, class-balanced test set.
    pub test_samples: usize,
}

/// Per-client generation metadata (small; the samples themselves are
/// regenerated on demand).
#[derive(Debug, Clone, PartialEq)]
struct ClientMeta {
    seed: u64,
    num_samples: usize,
    /// `(class, probability)` pairs; probabilities sum to 1.
    label_probs: Vec<(u32, f32)>,
}

/// One client's materialised local dataset.
///
/// `x` is row-major `[len × feature_dim]`, `y` holds class labels.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientDataset {
    /// Flattened features, `len × feature_dim` row-major.
    pub x: Vec<f32>,
    /// Labels, one per row.
    pub y: Vec<usize>,
    feature_dim: usize,
}

impl ClientDataset {
    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// Returns `true` when the client holds no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Feature dimension of each sample.
    #[must_use]
    pub fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    /// Draws a minibatch of `batch` rows uniformly with replacement,
    /// returning `(features, labels)`.
    ///
    /// # Panics
    /// Panics if the dataset is empty.
    #[must_use]
    pub fn sample_batch<R: Rng>(&self, rng: &mut R, batch: usize) -> (Vec<f32>, Vec<usize>) {
        let mut bx = Vec::with_capacity(batch * self.feature_dim);
        let mut by = Vec::with_capacity(batch);
        self.sample_batch_into(rng, batch, &mut bx, &mut by);
        (bx, by)
    }

    /// Like [`ClientDataset::sample_batch`] but writing into caller-owned
    /// staging buffers (cleared first) — the allocation-free form used by
    /// the simulator's pooled training loop. Draws the exact same RNG
    /// stream as `sample_batch`, so the two are interchangeable
    /// bit-for-bit.
    ///
    /// # Panics
    /// Panics if the dataset is empty.
    pub fn sample_batch_into<R: Rng>(
        &self,
        rng: &mut R,
        batch: usize,
        bx: &mut Vec<f32>,
        by: &mut Vec<usize>,
    ) {
        assert!(!self.is_empty(), "cannot sample from an empty dataset");
        bx.clear();
        by.clear();
        for _ in 0..batch {
            let i = rng.gen_range(0..self.len());
            bx.extend_from_slice(&self.x[i * self.feature_dim..(i + 1) * self.feature_dim]);
            by.push(self.y[i]);
        }
    }
}

/// A synthetic cross-device federated dataset.
///
/// Generated once from a `(config, seed)` pair; every query is
/// deterministic. See the crate docs for the generative model.
#[derive(Debug, Clone)]
pub struct SyntheticFlDataset {
    cfg: DatasetConfig,
    master_seed: u64,
    /// Class means, `classes × feature_dim` row-major.
    class_means: Vec<f32>,
    client_meta: Vec<ClientMeta>,
    test_x: Vec<f32>,
    test_y: Vec<usize>,
    /// Normalised client weights `p_i` (∝ sample count, Σ = 1).
    weights: Vec<f64>,
}

impl SyntheticFlDataset {
    /// Generates a dataset.
    ///
    /// # Panics
    /// Panics on degenerate configs (zero classes/clients/features).
    #[must_use]
    pub fn generate(cfg: DatasetConfig, seed: u64) -> Self {
        assert!(cfg.classes > 0, "need at least one class");
        assert!(cfg.clients > 0, "need at least one client");
        assert!(cfg.feature_dim > 0, "need at least one feature");
        assert!(
            cfg.min_samples_per_client <= cfg.max_samples_per_client,
            "min samples exceeds max samples"
        );

        // Class means: μ_c ~ N(0, I).
        let mut rng = seeded_rng(seed, "class-means", 0);
        let class_means: Vec<f32> = (0..cfg.classes * cfg.feature_dim)
            .map(|_| normal(&mut rng) as f32)
            .collect();

        // Per-client metadata.
        let mut client_meta = Vec::with_capacity(cfg.clients);
        for i in 0..cfg.clients {
            let mut crng = seeded_rng(seed, "client-meta", i as u64);
            // Sample count: log-normal, clamped.
            let ln_n = (cfg.mean_samples_per_client.max(1.0)).ln() + 0.6 * normal(&mut crng);
            let num_samples = (ln_n.exp().round() as usize)
                .clamp(cfg.min_samples_per_client, cfg.max_samples_per_client);
            // Label skew: a geometric number of classes around the mean,
            // weighted by normalised Exp(1) draws (symmetric Dirichlet(1)).
            let p_more = 1.0 - 1.0 / cfg.classes_per_client_mean.max(1.0);
            let mut k = 1usize;
            while k < cfg.classes && crng.gen::<f64>() < p_more {
                k += 1;
            }
            let mut chosen = Vec::with_capacity(k);
            while chosen.len() < k {
                let c = crng.gen_range(0..cfg.classes) as u32;
                if !chosen.contains(&c) {
                    chosen.push(c);
                }
            }
            chosen.sort_unstable();
            let raw: Vec<f64> = (0..k).map(|_| -crng.gen::<f64>().max(1e-12).ln()).collect();
            let total: f64 = raw.iter().sum();
            let label_probs: Vec<(u32, f32)> = chosen
                .into_iter()
                .zip(raw)
                .map(|(c, w)| (c, (w / total) as f32))
                .collect();
            client_meta.push(ClientMeta {
                seed: derive_seed(seed, "client-data", i as u64),
                num_samples,
                label_probs,
            });
        }

        // Class-balanced test set (no client bias: the global distribution).
        let mut trng = seeded_rng(seed, "test-set", 0);
        let mut test_x = Vec::with_capacity(cfg.test_samples * cfg.feature_dim);
        let mut test_y = Vec::with_capacity(cfg.test_samples);
        for i in 0..cfg.test_samples {
            let c = i % cfg.classes;
            let mean = &class_means[c * cfg.feature_dim..(c + 1) * cfg.feature_dim];
            for &m in mean {
                test_x.push(m + (cfg.noise_sigma * normal(&mut trng)) as f32);
            }
            test_y.push(c);
        }

        // Importance weights p_i ∝ |D_i|.
        let total_samples: f64 = client_meta.iter().map(|m| m.num_samples as f64).sum();
        let weights = client_meta
            .iter()
            .map(|m| m.num_samples as f64 / total_samples)
            .collect();

        Self {
            cfg,
            master_seed: seed,
            class_means,
            client_meta,
            test_x,
            test_y,
            weights,
        }
    }

    /// The generation config.
    #[must_use]
    pub fn config(&self) -> &DatasetConfig {
        &self.cfg
    }

    /// Number of clients `N`.
    #[must_use]
    pub fn num_clients(&self) -> usize {
        self.client_meta.len()
    }

    /// Number of classes.
    #[must_use]
    pub fn classes(&self) -> usize {
        self.cfg.classes
    }

    /// Feature dimension.
    #[must_use]
    pub fn feature_dim(&self) -> usize {
        self.cfg.feature_dim
    }

    /// Per-client sample count (without materialising the data).
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn client_len(&self, id: usize) -> usize {
        self.client_meta[id].num_samples
    }

    /// Normalised client importance weights `p_i` (sum to 1), proportional
    /// to local dataset size — the standard FedAvg weighting.
    #[must_use]
    pub fn client_weights(&self) -> &[f64] {
        &self.weights
    }

    /// Materialises client `id`'s local dataset. Deterministic: the same
    /// `id` always yields identical samples.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn client(&self, id: usize) -> ClientDataset {
        let meta = &self.client_meta[id];
        let mut rng = StdRng::seed_from_u64(meta.seed);
        let dim = self.cfg.feature_dim;
        // Per-client feature bias.
        let bias: Vec<f32> = (0..dim)
            .map(|_| (self.cfg.client_bias_sigma * normal(&mut rng)) as f32)
            .collect();
        let mut x = Vec::with_capacity(meta.num_samples * dim);
        let mut y = Vec::with_capacity(meta.num_samples);
        for _ in 0..meta.num_samples {
            let c = sample_label(&meta.label_probs, rng.gen::<f32>());
            let mean = &self.class_means[c * dim..(c + 1) * dim];
            for (j, &m) in mean.iter().enumerate() {
                x.push(m + bias[j] + (self.cfg.noise_sigma * normal(&mut rng)) as f32);
            }
            y.push(c);
        }
        ClientDataset {
            x,
            y,
            feature_dim: dim,
        }
    }

    /// The held-out test set `(features, labels)`.
    #[must_use]
    pub fn test_set(&self) -> (&[f32], &[usize]) {
        (&self.test_x, &self.test_y)
    }

    /// The master seed the dataset was generated from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.master_seed
    }
}

/// Inverse-CDF draw from a small sparse label distribution.
fn sample_label(probs: &[(u32, f32)], u: f32) -> usize {
    let mut acc = 0.0f32;
    for &(c, p) in probs {
        acc += p;
        if u < acc {
            return c as usize;
        }
    }
    probs.last().expect("label distribution is non-empty").0 as usize
}

/// Box–Muller standard normal.
fn normal<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 > f64::EPSILON {
            let u2: f64 = rng.gen();
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DatasetProfile;
    use rand::SeedableRng;

    fn small() -> SyntheticFlDataset {
        let cfg = DatasetConfig {
            classes: 10,
            clients: 50,
            feature_dim: 16,
            mean_samples_per_client: 60.0,
            min_samples_per_client: 22,
            max_samples_per_client: 200,
            classes_per_client_mean: 3.0,
            noise_sigma: 1.0,
            client_bias_sigma: 0.2,
            test_samples: 500,
        };
        SyntheticFlDataset::generate(cfg, 7)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.client(3), b.client(3));
        assert_eq!(a.test_set().0, b.test_set().0);
        assert_eq!(a.client_weights(), b.client_weights());
    }

    #[test]
    fn client_materialisation_is_stable_across_calls() {
        let d = small();
        assert_eq!(d.client(11), d.client(11));
    }

    #[test]
    fn sample_counts_respect_clamps() {
        let d = small();
        for i in 0..d.num_clients() {
            let n = d.client_len(i);
            assert!((22..=200).contains(&n), "client {i} has {n} samples");
            assert_eq!(d.client(i).len(), n);
        }
    }

    #[test]
    fn weights_sum_to_one_and_track_sizes() {
        let d = small();
        let sum: f64 = d.client_weights().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // Heavier clients get larger weights.
        let (big, small_c) = {
            let mut idx: Vec<usize> = (0..d.num_clients()).collect();
            idx.sort_by_key(|&i| d.client_len(i));
            (idx[d.num_clients() - 1], idx[0])
        };
        assert!(d.client_weights()[big] > d.client_weights()[small_c]);
    }

    #[test]
    fn labels_are_skewed_and_heterogeneous() {
        let d = small();
        // Each client holds few distinct classes *on average* (the count
        // is geometric around classes_per_client_mean = 3, so individual
        // clients may exceed it) and never the full label space...
        let mut all_class_sets = Vec::new();
        for i in 0..20 {
            let c = d.client(i);
            let mut classes: Vec<usize> = c.y.clone();
            classes.sort_unstable();
            classes.dedup();
            assert!(
                classes.len() < 10,
                "client {i} holds all {} classes",
                classes.len()
            );
            all_class_sets.push(classes);
        }
        let mean_classes: f64 = all_class_sets.iter().map(|s| s.len() as f64).sum::<f64>() / 20.0;
        assert!(
            mean_classes <= 6.0,
            "mean distinct classes {mean_classes} not skewed"
        );
        // ...and different clients hold different classes.
        let distinct: std::collections::HashSet<Vec<usize>> =
            all_class_sets.iter().cloned().collect();
        assert!(
            distinct.len() > 5,
            "only {} distinct class sets",
            distinct.len()
        );
    }

    #[test]
    fn labels_match_declared_distribution() {
        let d = small();
        let meta_classes: std::collections::HashSet<usize> = d.client_meta[0]
            .label_probs
            .iter()
            .map(|&(c, _)| c as usize)
            .collect();
        let observed: std::collections::HashSet<usize> = d.client(0).y.iter().copied().collect();
        assert!(observed.is_subset(&meta_classes));
    }

    #[test]
    fn test_set_is_class_balanced() {
        let d = small();
        let (_, y) = d.test_set();
        let mut counts = vec![0usize; 10];
        for &l in y {
            counts[l] += 1;
        }
        let min = counts.iter().min().unwrap();
        let max = counts.iter().max().unwrap();
        assert!(max - min <= 1, "unbalanced test counts {counts:?}");
    }

    #[test]
    fn minibatch_sampling_shapes() {
        let d = small();
        let c = d.client(5);
        let mut rng = StdRng::seed_from_u64(1);
        let (bx, by) = c.sample_batch(&mut rng, 16);
        assert_eq!(bx.len(), 16 * 16);
        assert_eq!(by.len(), 16);
        assert!(by.iter().all(|&l| l < 10));
    }

    #[test]
    fn sample_batch_into_matches_owning_form_bitwise() {
        let d = small();
        let c = d.client(3);
        let (bx, by) = c.sample_batch(&mut StdRng::seed_from_u64(9), 12);
        let mut sx = vec![99.0f32; 7]; // stale staging contents must not leak
        let mut sy = vec![42usize; 3];
        let mut rng = StdRng::seed_from_u64(9);
        c.sample_batch_into(&mut rng, 12, &mut sx, &mut sy);
        assert_eq!(bx, sx);
        assert_eq!(by, sy);
        // Reuse keeps drawing the same stream as consecutive owning calls.
        let (bx2, _) = {
            let mut r2 = StdRng::seed_from_u64(9);
            let _ = c.sample_batch(&mut r2, 12);
            c.sample_batch(&mut r2, 12)
        };
        c.sample_batch_into(&mut rng, 12, &mut sx, &mut sy);
        assert_eq!(bx2, sx);
    }

    #[test]
    fn task_is_learnable_by_centralized_logreg() {
        // Gather data from several clients and fit a linear classifier;
        // accuracy on the test set must clearly beat chance (10 classes →
        // chance = 10%).
        use gluefl_ml::{Mlp, MlpConfig, Sgd};
        let d = small();
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..30 {
            let c = d.client(i);
            x.extend_from_slice(&c.x);
            y.extend_from_slice(&c.y);
        }
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = Mlp::new(
            MlpConfig {
                input_dim: 16,
                hidden: vec![32],
                classes: 10,
                batch_norm: false,
            },
            &mut rng,
        );
        let mut opt = Sgd::new(model.num_params(), 0.1, 0.9);
        for _ in 0..150 {
            let (_, g) = model.loss_and_grad(&x, &y);
            opt.step(model.params_mut(), &g);
        }
        let (tx, ty) = d.test_set();
        let acc = model.evaluate(tx, ty).top1;
        assert!(acc > 0.5, "centralized accuracy {acc} too low");
    }

    #[test]
    fn profile_configs_generate() {
        let cfg = DatasetProfile::GoogleSpeech.config(0.02);
        let d = SyntheticFlDataset::generate(cfg, 1);
        assert_eq!(d.classes(), 35);
        assert!(d.num_clients() >= 4);
    }

    #[test]
    #[should_panic(expected = "cannot sample from an empty dataset")]
    fn empty_batch_panics() {
        let c = ClientDataset {
            x: vec![],
            y: vec![],
            feature_dim: 4,
        };
        let mut rng = StdRng::seed_from_u64(0);
        let _ = c.sample_batch(&mut rng, 1);
    }
}
