//! Synthetic non-IID federated datasets for the GlueFL reproduction.
//!
//! The paper trains on FEMNIST, OpenImage, and Google Speech, partitioned
//! across thousands of clients with FedScale's real-world non-IID mapping.
//! We substitute synthetic datasets that preserve the properties the
//! evaluation actually depends on (DESIGN.md §2):
//!
//! * **class-conditional Gaussian features** — a learnable task whose
//!   accuracy-vs-rounds curve has the usual saturating shape;
//! * **label skew** — each client holds a small Dirichlet-weighted subset
//!   of classes, so client gradients are heterogeneous and sparsification
//!   masks differ across clients;
//! * **heavy-tailed client sizes** — per-client sample counts follow a
//!   log-normal clipped at FedScale's minimum of 22 samples, and client
//!   importance weights `p_i` are proportional to sample counts;
//! * **per-client feature bias** — a small client-specific offset models
//!   feature-distribution drift between devices.
//!
//! Client datasets are **materialised lazily and deterministically** from
//! per-client seeds: holding a 10 625-client OpenImage-scale dataset costs
//! only the class means plus per-client metadata, and
//! [`SyntheticFlDataset::client`] regenerates identical samples every call.
//!
//! # Example
//!
//! ```
//! use gluefl_data::{DatasetProfile, SyntheticFlDataset};
//!
//! let cfg = DatasetProfile::Femnist.config(0.05); // 5% of paper scale
//! let data = SyntheticFlDataset::generate(cfg, 42);
//! assert_eq!(data.num_clients(), 140);
//! let c0 = data.client(0);
//! assert!(c0.len() >= 22); // FedScale's minimum samples per client
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
pub mod diagnostics;
mod profiles;

pub use dataset::{ClientDataset, DatasetConfig, SyntheticFlDataset};
pub use profiles::DatasetProfile;
