//! Heterogeneity diagnostics for federated datasets.
//!
//! The paper's results depend on the data being *non-IID across clients*
//! (label skew drives divergent client gradients, which drive divergent
//! top-k masks). These metrics quantify that property so experiments can
//! assert they operate in the intended regime instead of assuming it.

use crate::dataset::SyntheticFlDataset;

/// Per-dataset heterogeneity summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Heterogeneity {
    /// Mean number of distinct classes per client.
    pub mean_classes_per_client: f64,
    /// Mean total-variation distance between a client's label
    /// distribution and the global label distribution, in `[0, 1]`.
    /// 0 = perfectly IID; values above ~0.5 indicate strong label skew.
    pub mean_tv_distance: f64,
    /// Ratio of the largest to smallest client dataset size.
    pub size_imbalance: f64,
}

/// Computes heterogeneity metrics over the first `sample_clients` clients
/// (materialising only those).
///
/// # Panics
/// Panics if `sample_clients == 0` or exceeds the population.
#[must_use]
pub fn heterogeneity(data: &SyntheticFlDataset, sample_clients: usize) -> Heterogeneity {
    assert!(
        sample_clients > 0 && sample_clients <= data.num_clients(),
        "sample_clients must be in 1..=N"
    );
    let classes = data.classes();
    // Global label distribution over the sampled clients.
    let mut global = vec![0.0f64; classes];
    let mut per_client: Vec<Vec<f64>> = Vec::with_capacity(sample_clients);
    let mut distinct_total = 0usize;
    let (mut min_len, mut max_len) = (usize::MAX, 0usize);
    for id in 0..sample_clients {
        let c = data.client(id);
        min_len = min_len.min(c.len());
        max_len = max_len.max(c.len());
        let mut hist = vec![0.0f64; classes];
        for &label in &c.y {
            hist[label] += 1.0;
        }
        distinct_total += hist.iter().filter(|&&h| h > 0.0).count();
        let n = c.len() as f64;
        for (g, h) in global.iter_mut().zip(&mut hist) {
            *g += *h;
            *h /= n;
        }
        per_client.push(hist);
    }
    let total: f64 = global.iter().sum();
    for g in &mut global {
        *g /= total;
    }
    // Mean total-variation distance: TV(p, q) = ½ Σ |p_c − q_c|.
    let mean_tv = per_client
        .iter()
        .map(|p| {
            0.5 * p
                .iter()
                .zip(&global)
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>()
        })
        .sum::<f64>()
        / sample_clients as f64;
    Heterogeneity {
        mean_classes_per_client: distinct_total as f64 / sample_clients as f64,
        mean_tv_distance: mean_tv,
        size_imbalance: max_len as f64 / min_len.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetConfig;
    use crate::DatasetProfile;

    fn dataset(classes_per_client: f64) -> SyntheticFlDataset {
        let cfg = DatasetConfig {
            classes: 20,
            clients: 60,
            feature_dim: 8,
            mean_samples_per_client: 80.0,
            min_samples_per_client: 22,
            max_samples_per_client: 300,
            classes_per_client_mean: classes_per_client,
            noise_sigma: 1.0,
            client_bias_sigma: 0.1,
            test_samples: 100,
        };
        SyntheticFlDataset::generate(cfg, 11)
    }

    #[test]
    fn skewed_dataset_has_high_tv_distance() {
        let h = heterogeneity(&dataset(3.0), 60);
        assert!(
            h.mean_tv_distance > 0.5,
            "expected strong label skew, TV = {}",
            h.mean_tv_distance
        );
        assert!(h.mean_classes_per_client < 8.0);
    }

    #[test]
    fn broader_clients_are_less_skewed() {
        let narrow = heterogeneity(&dataset(2.0), 60);
        let broad = heterogeneity(&dataset(12.0), 60);
        assert!(
            broad.mean_tv_distance < narrow.mean_tv_distance,
            "broad {} vs narrow {}",
            broad.mean_tv_distance,
            narrow.mean_tv_distance
        );
        assert!(broad.mean_classes_per_client > narrow.mean_classes_per_client);
    }

    #[test]
    fn size_imbalance_reflects_lognormal_spread() {
        let h = heterogeneity(&dataset(3.0), 60);
        assert!(h.size_imbalance > 1.5, "imbalance {}", h.size_imbalance);
    }

    #[test]
    fn paper_profiles_are_in_the_skewed_regime() {
        // All three tasks must exhibit the strong label skew the paper's
        // gradient-divergence narrative requires.
        for profile in DatasetProfile::all() {
            let mut cfg = profile.config(0.02);
            cfg.clients = cfg.clients.min(80);
            let data = SyntheticFlDataset::generate(cfg, 3);
            let n = data.num_clients().min(50);
            let h = heterogeneity(&data, n);
            assert!(
                h.mean_tv_distance > 0.4,
                "{}: TV distance {} too IID",
                profile.name(),
                h.mean_tv_distance
            );
        }
    }

    #[test]
    #[should_panic(expected = "sample_clients")]
    fn rejects_zero_sample() {
        let _ = heterogeneity(&dataset(3.0), 0);
    }
}
