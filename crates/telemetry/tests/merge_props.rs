//! Order-independence of per-thread cell merges, and exact counter
//! summation under the real work-stealing pool.

use gluefl_telemetry::{Clock, LocalCells, Phase, Telemetry};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// One randomly generated recording op against a local cell.
#[derive(Debug, Clone, Copy)]
enum Op {
    Count { counter: usize, n: u64 },
    Observe { hist: usize, v: u64 },
    Span { phase: usize, nanos: u64 },
}

fn gen_ops(seed: u64, cells: usize, ops: usize) -> Vec<(usize, Op)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..ops)
        .map(|_| {
            let cell = rng.gen_range(0..cells);
            let op = match rng.gen_range(0..3u32) {
                0 => Op::Count {
                    counter: rng.gen_range(0..3usize),
                    n: rng.gen_range(0..1_000u64),
                },
                1 => Op::Observe {
                    hist: rng.gen_range(0..2usize),
                    v: rng.gen_range(0..1_000_000u64),
                },
                _ => Op::Span {
                    phase: rng.gen_range(0..Phase::ALL.len()),
                    nanos: rng.gen_range(0..10_000u64),
                },
            };
            (cell, op)
        })
        .collect()
}

/// Builds a hub, applies `ops` to `cells` local cells, merges the cells
/// in the given order, and returns the rendered snapshot.
fn run_schedule(ops: &[(usize, Op)], cells: usize, merge_order: &[usize]) -> String {
    let (clock, _handle) = Clock::manual();
    let tel = Telemetry::with_clock(clock);
    let counters = [
        tel.counter("frames_total", &[("kind", "upload")]),
        tel.counter("frames_total", &[("kind", "model")]),
        tel.counter("skips_total", &[]),
    ];
    let hists = [
        tel.histogram("bytes_up", &[]),
        tel.histogram("update_norm", &[]),
    ];
    let mut locals: Vec<LocalCells> = (0..cells).map(|_| tel.local()).collect();
    for &(cell, op) in ops {
        let lc = &mut locals[cell];
        match op {
            Op::Count { counter, n } => lc.add(&counters[counter], n),
            Op::Observe { hist, v } => lc.observe(&hists[hist], v),
            Op::Span { phase, nanos } => lc.span_add(Phase::ALL[phase], nanos),
        }
    }
    for &i in merge_order {
        tel.merge(&mut locals[i]);
    }
    tel.snapshot().render_text()
}

proptest! {
    /// Any merge order of any set of per-thread cells yields the same
    /// snapshot, byte for byte — counter sums, histogram buckets,
    /// min/max, and per-phase span totals are all merge-order
    /// independent.
    #[test]
    fn merges_are_order_independent(
        seed in 0u64..50_000,
        cells in 1usize..8,
        ops in 0usize..300,
    ) {
        let ops = gen_ops(seed, cells, ops);
        let forward: Vec<usize> = (0..cells).collect();
        let mut shuffled = forward.clone();
        shuffled.shuffle(&mut StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15));
        let a = run_schedule(&ops, cells, &forward);
        let b = run_schedule(&ops, cells, &shuffled);
        prop_assert_eq!(a, b);
    }

    /// Merging everything is equivalent to having recorded everything
    /// on one thread.
    #[test]
    fn merged_cells_match_single_threaded_totals(
        seed in 0u64..50_000,
        cells in 1usize..8,
        ops in 0usize..300,
    ) {
        let ops = gen_ops(seed, cells, ops);
        let order: Vec<usize> = (0..cells).collect();
        let many = run_schedule(&ops, cells, &order);
        let one_cell: Vec<(usize, Op)> = ops.iter().map(|&(_, op)| (0, op)).collect();
        let one = run_schedule(&one_cell, 1, &[0]);
        prop_assert_eq!(many, one);
    }
}

/// Counters and histograms recorded from real `gluefl-pool` workers —
/// both through shared atomic handles and through per-job
/// [`LocalCells`] — sum exactly, with nothing lost to contention or
/// stealing.
#[test]
fn counters_sum_exactly_across_pool_workers() {
    let tel = std::sync::Arc::new(Telemetry::new());
    let atomic = tel.counter("atomic_total", &[]);
    let local = tel.counter("local_total", &[]);
    let sizes = tel.histogram("sizes", &[]);
    let jobs: Vec<u64> = (1..=503).collect();
    let expected: u64 = jobs.iter().sum();
    let tel2 = std::sync::Arc::clone(&tel);
    gluefl_pool::run(4, jobs, move |j| {
        atomic.add(j);
        let mut cells = tel2.local();
        cells.add(&local, j);
        cells.observe(&sizes, j);
        tel2.merge(&mut cells);
    });
    let snap = tel.snapshot();
    assert_eq!(snap.value("atomic_total", &[]), Some(expected as f64));
    assert_eq!(snap.value("local_total", &[]), Some(expected as f64));
    assert_eq!(snap.value("sizes_count", &[]), Some(503.0));
    assert_eq!(snap.value("sizes_sum", &[]), Some(expected as f64));
    assert_eq!(snap.value("sizes_min", &[]), Some(1.0));
    assert_eq!(snap.value("sizes_max", &[]), Some(503.0));
}

/// The snapshot built by the recorder round-trips bit-exactly through
/// the text exposition renderer and parser (acceptance criterion).
#[test]
fn snapshot_round_trips_through_text_exposition() {
    let (clock, handle) = Clock::manual();
    let tel = Telemetry::with_clock(clock);
    tel.counter("frames_total", &[("kind", "upload")]).add(17);
    tel.gauge("live_connections", &[]).set(3);
    let h = tel.histogram("bytes_up", &[("frame", "upload")]);
    h.observe(0);
    h.observe(20_016);
    handle.advance(1_000);
    tel.record_phase(Phase::Encode, 1_000, 2, -1);
    let snap = tel.snapshot();
    let parsed = gluefl_telemetry::Snapshot::parse_text(&snap.render_text()).expect("parses");
    assert_eq!(parsed, snap);
}
