//! The recorder hub: counters, gauges, histograms, per-phase span
//! tables, and the per-thread [`LocalCells`] they merge from.

use crate::clock::Clock;
use crate::expo::{Sample, Snapshot};
use crate::journal::{Event, EventKind, Journal};
use crate::phase::{Phase, PHASE_COUNT};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of power-of-two histogram buckets. Bucket `k` counts values
/// whose bit length is `k` (i.e. `v == 0` lands in bucket 0, `v` in
/// `[2^(k-1), 2^k)` lands in bucket `k`); everything of 2³⁰ and above
/// collapses into the last bucket.
pub const HIST_BUCKETS: usize = 32;

fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

/// Shared cells of one histogram: bucket counts plus count/sum/min/max.
struct HistCells {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl HistCells {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    fn observe(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }
}

/// A monotonically increasing counter handle.
///
/// Cloning is cheap (an [`Arc`] bump); increments are single relaxed
/// atomic adds, safe from any thread. For contention-free recording in
/// tight worker loops, pair the handle with [`LocalCells::add`] and
/// merge once per worker.
#[derive(Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
    id: usize,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    /// Registry id — the index [`LocalCells`] records under.
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }
}

/// A last-write-wins gauge handle.
///
/// Gauges are instantaneous values (queue depth, live connections), so
/// unlike counters and histograms they have no order-independent merge
/// — handles write straight to the shared cell (still lock-free) and
/// are deliberately absent from [`LocalCells`].
#[derive(Clone)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// Stores an absolute value.
    pub fn set(&self, v: u64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A power-of-two-bucket histogram handle (see [`HIST_BUCKETS`]).
#[derive(Clone)]
pub struct Histogram {
    cells: Arc<HistCells>,
    id: usize,
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, v: u64) {
        self.cells.observe(v);
    }

    /// Number of observations so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.cells.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations so far.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.cells.sum.load(Ordering::Relaxed)
    }

    /// Registry id — the index [`LocalCells`] records under.
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }
}

struct CounterEntry {
    name: String,
    labels: Vec<(String, String)>,
    cell: Arc<AtomicU64>,
}

struct GaugeEntry {
    name: String,
    labels: Vec<(String, String)>,
    cell: Arc<AtomicU64>,
}

struct HistEntry {
    name: String,
    labels: Vec<(String, String)>,
    cells: Arc<HistCells>,
}

#[derive(Default)]
struct Registry {
    counters: Vec<CounterEntry>,
    gauges: Vec<GaugeEntry>,
    hists: Vec<HistEntry>,
}

fn owned_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|&(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

/// Plain (non-atomic) per-thread metric cells.
///
/// A worker creates one with [`Telemetry::local`], records into it with
/// zero synchronisation, and merges it back with [`Telemetry::merge`]
/// (which drains the cells, so one `LocalCells` can be reused across
/// batches). Counter and histogram merges are pure sums and min/max
/// folds — all commutative and associative — so **any merge order
/// yields the same snapshot**; `tests/merge_props.rs` pins this.
#[derive(Debug, Clone, Default)]
pub struct LocalCells {
    phase_nanos: [u64; PHASE_COUNT],
    phase_spans: [u64; PHASE_COUNT],
    counters: Vec<u64>,
    hists: Vec<LocalHist>,
}

#[derive(Debug, Clone)]
struct LocalHist {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LocalHist {
    fn default() -> Self {
        Self {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl LocalCells {
    /// Adds `n` to the local cell of `counter`.
    pub fn add(&mut self, counter: &Counter, n: u64) {
        let id = counter.id();
        if id >= self.counters.len() {
            self.counters.resize(id + 1, 0);
        }
        self.counters[id] += n;
    }

    /// Adds one to the local cell of `counter`.
    pub fn inc(&mut self, counter: &Counter) {
        self.add(counter, 1);
    }

    /// Records one observation into the local cells of `hist`.
    pub fn observe(&mut self, hist: &Histogram, v: u64) {
        let id = hist.id();
        if id >= self.hists.len() {
            self.hists.resize(id + 1, LocalHist::default());
        }
        let h = &mut self.hists[id];
        h.buckets[bucket_of(v)] += 1;
        h.count += 1;
        h.sum += v;
        h.min = h.min.min(v);
        h.max = h.max.max(v);
    }

    /// Accumulates one span of `dur_nanos` under `phase`.
    pub fn span_add(&mut self, phase: Phase, dur_nanos: u64) {
        self.phase_nanos[phase.index()] += dur_nanos;
        self.phase_spans[phase.index()] += 1;
    }

    /// True if nothing has been recorded since creation or last merge.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.phase_spans.iter().all(|&c| c == 0)
            && self.phase_nanos.iter().all(|&c| c == 0)
            && self.counters.iter().all(|&c| c == 0)
            && self.hists.iter().all(|h| h.count == 0)
    }
}

/// The recorder hub. See the [crate docs](crate) for the full picture.
///
/// All recording methods take `&self` and are safe from any thread;
/// share one hub with `Arc<Telemetry>`. Instrumented code holds an
/// `Option` of it and skips everything when `None`.
pub struct Telemetry {
    clock: Clock,
    phase_nanos: [AtomicU64; PHASE_COUNT],
    phase_spans: [AtomicU64; PHASE_COUNT],
    registry: Mutex<Registry>,
    journal: Journal,
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Telemetry").finish_non_exhaustive()
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    /// A hub on the real monotonic clock with the default journal
    /// capacity ([`Journal::DEFAULT_CAPACITY`]).
    #[must_use]
    pub fn new() -> Self {
        Self::with_clock(Clock::monotonic())
    }

    /// A hub on an injected clock (use [`Clock::manual`] in tests).
    #[must_use]
    pub fn with_clock(clock: Clock) -> Self {
        Self {
            clock,
            phase_nanos: std::array::from_fn(|_| AtomicU64::new(0)),
            phase_spans: std::array::from_fn(|_| AtomicU64::new(0)),
            registry: Mutex::new(Registry::default()),
            journal: Journal::new(Journal::DEFAULT_CAPACITY),
        }
    }

    /// The hub's clock.
    #[must_use]
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Current time on the hub's clock, nanoseconds.
    #[must_use]
    pub fn now_nanos(&self) -> u64 {
        self.clock.now_nanos()
    }

    /// The hub's event journal.
    #[must_use]
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// Registers (or finds) the counter `name{labels}` and returns a
    /// handle. Repeated calls with the same name and labels return
    /// handles to the same cell.
    #[must_use]
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let labels = owned_labels(labels);
        let mut reg = self.registry.lock().unwrap();
        if let Some((id, e)) = reg
            .counters
            .iter()
            .enumerate()
            .find(|(_, e)| e.name == name && e.labels == labels)
        {
            return Counter {
                cell: Arc::clone(&e.cell),
                id,
            };
        }
        let cell = Arc::new(AtomicU64::new(0));
        let id = reg.counters.len();
        reg.counters.push(CounterEntry {
            name: name.to_string(),
            labels,
            cell: Arc::clone(&cell),
        });
        Counter { cell, id }
    }

    /// Registers (or finds) the gauge `name{labels}`.
    #[must_use]
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let labels = owned_labels(labels);
        let mut reg = self.registry.lock().unwrap();
        if let Some(e) = reg
            .gauges
            .iter()
            .find(|e| e.name == name && e.labels == labels)
        {
            return Gauge {
                cell: Arc::clone(&e.cell),
            };
        }
        let cell = Arc::new(AtomicU64::new(0));
        reg.gauges.push(GaugeEntry {
            name: name.to_string(),
            labels,
            cell: Arc::clone(&cell),
        });
        Gauge { cell }
    }

    /// Registers (or finds) the histogram `name{labels}`.
    #[must_use]
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let labels = owned_labels(labels);
        let mut reg = self.registry.lock().unwrap();
        if let Some((id, e)) = reg
            .hists
            .iter()
            .enumerate()
            .find(|(_, e)| e.name == name && e.labels == labels)
        {
            return Histogram {
                cells: Arc::clone(&e.cells),
                id,
            };
        }
        let cells = Arc::new(HistCells::new());
        let id = reg.hists.len();
        reg.hists.push(HistEntry {
            name: name.to_string(),
            labels,
            cells: Arc::clone(&cells),
        });
        Histogram { cells, id }
    }

    /// Fresh per-thread cells for contention-free recording.
    #[must_use]
    pub fn local(&self) -> LocalCells {
        LocalCells::default()
    }

    /// Merges (and drains) per-thread cells into the hub.
    ///
    /// Merging is commutative: any order of merges across any number of
    /// `LocalCells` produces the same totals.
    pub fn merge(&self, cells: &mut LocalCells) {
        for (i, n) in cells.phase_nanos.iter_mut().enumerate() {
            if *n > 0 {
                self.phase_nanos[i].fetch_add(*n, Ordering::Relaxed);
                *n = 0;
            }
        }
        for (i, n) in cells.phase_spans.iter_mut().enumerate() {
            if *n > 0 {
                self.phase_spans[i].fetch_add(*n, Ordering::Relaxed);
                *n = 0;
            }
        }
        let reg = self.registry.lock().unwrap();
        for (id, n) in cells.counters.iter_mut().enumerate() {
            if *n > 0 {
                if let Some(e) = reg.counters.get(id) {
                    e.cell.fetch_add(*n, Ordering::Relaxed);
                }
                *n = 0;
            }
        }
        for (id, h) in cells.hists.iter_mut().enumerate() {
            if h.count > 0 {
                if let Some(e) = reg.hists.get(id) {
                    for (b, &c) in e.cells.buckets.iter().zip(&h.buckets) {
                        if c > 0 {
                            b.fetch_add(c, Ordering::Relaxed);
                        }
                    }
                    e.cells.count.fetch_add(h.count, Ordering::Relaxed);
                    e.cells.sum.fetch_add(h.sum, Ordering::Relaxed);
                    e.cells.min.fetch_min(h.min, Ordering::Relaxed);
                    e.cells.max.fetch_max(h.max, Ordering::Relaxed);
                }
                *h = LocalHist::default();
            }
        }
    }

    /// Adds one finished span of `dur_nanos` under `phase` and journals
    /// it. `client` is the client id, or `-1` when the span is not
    /// client-scoped.
    pub fn record_phase(&self, phase: Phase, dur_nanos: u64, round: u32, client: i64) {
        self.phase_nanos[phase.index()].fetch_add(dur_nanos, Ordering::Relaxed);
        self.phase_spans[phase.index()].fetch_add(1, Ordering::Relaxed);
        self.event(round, client, EventKind::Span { phase, dur_nanos });
    }

    /// Starts a span; its duration records under `phase` when the guard
    /// drops.
    pub fn span(&self, phase: Phase, round: u32) -> Span<'_> {
        Span {
            tel: self,
            phase,
            round,
            start: self.now_nanos(),
        }
    }

    /// Total nanoseconds recorded under `phase` so far.
    #[must_use]
    pub fn phase_nanos(&self, phase: Phase) -> u64 {
        self.phase_nanos[phase.index()].load(Ordering::Relaxed)
    }

    /// Number of spans recorded under `phase` so far.
    #[must_use]
    pub fn phase_spans(&self, phase: Phase) -> u64 {
        self.phase_spans[phase.index()].load(Ordering::Relaxed)
    }

    /// Stamps `kind` with the hub clock and appends it to the journal.
    pub fn event(&self, round: u32, client: i64, kind: EventKind) {
        self.journal.record(Event {
            nanos: self.now_nanos(),
            round,
            client,
            kind,
        });
    }

    /// A point-in-time snapshot of every registered metric, sorted by
    /// `(name, labels)` so it is independent of registration and merge
    /// order.
    ///
    /// Values are exported as `f64`; counters above 2⁵³ would lose
    /// precision there, which no counter in this workspace approaches.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let mut samples = Vec::new();
        for p in Phase::ALL {
            samples.push(Sample::new(
                "gluefl_phase_nanos_total",
                &[("phase", p.name())],
                self.phase_nanos(p) as f64,
            ));
            samples.push(Sample::new(
                "gluefl_phase_spans_total",
                &[("phase", p.name())],
                self.phase_spans(p) as f64,
            ));
        }
        let reg = self.registry.lock().unwrap();
        for e in &reg.counters {
            samples.push(Sample {
                name: e.name.clone(),
                labels: e.labels.clone(),
                value: e.cell.load(Ordering::Relaxed) as f64,
            });
        }
        for e in &reg.gauges {
            samples.push(Sample {
                name: e.name.clone(),
                labels: e.labels.clone(),
                value: e.cell.load(Ordering::Relaxed) as f64,
            });
        }
        for e in &reg.hists {
            let count = e.cells.count.load(Ordering::Relaxed);
            for (k, b) in e.cells.buckets.iter().enumerate() {
                let c = b.load(Ordering::Relaxed);
                if c > 0 {
                    let mut labels = e.labels.clone();
                    labels.push(("pow2".to_string(), k.to_string()));
                    samples.push(Sample {
                        name: format!("{}_bucket", e.name),
                        labels,
                        value: c as f64,
                    });
                }
            }
            samples.push(Sample {
                name: format!("{}_count", e.name),
                labels: e.labels.clone(),
                value: count as f64,
            });
            samples.push(Sample {
                name: format!("{}_sum", e.name),
                labels: e.labels.clone(),
                value: e.cells.sum.load(Ordering::Relaxed) as f64,
            });
            if count > 0 {
                samples.push(Sample {
                    name: format!("{}_min", e.name),
                    labels: e.labels.clone(),
                    value: e.cells.min.load(Ordering::Relaxed) as f64,
                });
                samples.push(Sample {
                    name: format!("{}_max", e.name),
                    labels: e.labels.clone(),
                    value: e.cells.max.load(Ordering::Relaxed) as f64,
                });
            }
        }
        drop(reg);
        samples.push(Sample::new(
            "gluefl_journal_events_total",
            &[],
            self.journal.recorded() as f64,
        ));
        samples.push(Sample::new(
            "gluefl_journal_dropped_total",
            &[],
            self.journal.dropped() as f64,
        ));
        let mut snap = Snapshot { samples };
        snap.sort();
        snap
    }
}

/// A live span; records its duration when dropped.
#[must_use = "a span measures the scope it is alive for"]
pub struct Span<'a> {
    tel: &'a Telemetry,
    phase: Phase,
    round: u32,
    start: u64,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let dur = self.tel.now_nanos().saturating_sub(self.start);
        self.tel.record_phase(self.phase, dur, self.round, -1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_dedup_by_name_and_labels() {
        let tel = Telemetry::new();
        let a = tel.counter("x_total", &[("k", "v")]);
        let b = tel.counter("x_total", &[("k", "v")]);
        let c = tel.counter("x_total", &[("k", "w")]);
        a.add(2);
        b.add(3);
        c.inc();
        assert_eq!(a.get(), 5);
        assert_eq!(a.id(), b.id());
        assert_ne!(a.id(), c.id());
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn local_cells_drain_on_merge() {
        let tel = Telemetry::new();
        let n = tel.counter("n_total", &[]);
        let h = tel.histogram("h", &[]);
        let mut cells = tel.local();
        cells.add(&n, 7);
        cells.observe(&h, 100);
        cells.span_add(Phase::Train, 50);
        assert!(!cells.is_empty());
        tel.merge(&mut cells);
        assert!(cells.is_empty());
        tel.merge(&mut cells); // idempotent once drained
        assert_eq!(n.get(), 7);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 100);
        assert_eq!(tel.phase_nanos(Phase::Train), 50);
        assert_eq!(tel.phase_spans(Phase::Train), 1);
    }

    #[test]
    fn span_guard_records_on_drop() {
        let (clock, handle) = Clock::manual();
        let tel = Telemetry::with_clock(clock);
        {
            let _s = tel.span(Phase::Fold, 3);
            handle.advance(250);
        }
        assert_eq!(tel.phase_nanos(Phase::Fold), 250);
        assert_eq!(tel.phase_spans(Phase::Fold), 1);
        let events = tel.journal().events();
        assert_eq!(events.len(), 1);
        match events[0].kind {
            EventKind::Span { phase, dur_nanos } => {
                assert_eq!(phase, Phase::Fold);
                assert_eq!(dur_nanos, 250);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn gauge_is_last_write_wins() {
        let tel = Telemetry::new();
        let g = tel.gauge("depth", &[]);
        g.set(9);
        g.set(4);
        assert_eq!(g.get(), 4);
    }
}
