//! The bounded ring-buffer event journal and its typed events.

use crate::phase::Phase;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::Mutex;

/// Transfer direction of a measured frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Client → server.
    Up,
    /// Server → client.
    Down,
}

impl Dir {
    /// Stable lower-case name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Dir::Up => "up",
            Dir::Down => "down",
        }
    }
}

/// What happened. Every variant is `Copy` so journal entries never
/// allocate; string details are `&'static str` labels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A finished phase span of `dur_nanos`.
    Span {
        /// Which phase the span measured.
        phase: Phase,
        /// Span duration in nanoseconds.
        dur_nanos: u64,
    },
    /// The server granted a client's upload offer.
    OfferGranted,
    /// A per-client deadline expired (`which` is `"offer"` or
    /// `"upload"`).
    DeadlineExpired {
        /// Which deadline: `"offer"` or `"upload"`.
        which: &'static str,
    },
    /// A connection went quiet mid-message past the stall grace.
    Stall,
    /// An upload was skipped (late, corrupt, or over-committed).
    UploadSkipped,
    /// A client connection was killed.
    ClientKilled,
    /// A frame failed to decode (`kind` names the typed error).
    DecodeError {
        /// Stable name of the wire error variant.
        kind: &'static str,
    },
    /// A frame was sent or received (`frame` names the frame kind).
    Bytes {
        /// Transfer direction.
        dir: Dir,
        /// Stable frame-kind name.
        frame: &'static str,
        /// Measured frame length in bytes.
        bytes: u64,
    },
    /// A round finished with `kept` uploads folded in.
    RoundDone {
        /// Uploads kept (folded into the aggregate).
        kept: u32,
    },
}

/// One journal entry: a clock stamp, scope, and an [`EventKind`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Nanoseconds on the recording hub's clock.
    pub nanos: u64,
    /// Round the event belongs to.
    pub round: u32,
    /// Client id, or `-1` when not client-scoped.
    pub client: i64,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    fn fields(&self) -> (&'static str, Vec<(&'static str, String)>) {
        match self.kind {
            EventKind::Span { phase, dur_nanos } => (
                "span",
                vec![
                    ("phase", phase.name().to_string()),
                    ("dur_ns", dur_nanos.to_string()),
                ],
            ),
            EventKind::OfferGranted => ("offer_granted", Vec::new()),
            EventKind::DeadlineExpired { which } => {
                ("deadline_expired", vec![("which", which.to_string())])
            }
            EventKind::Stall => ("stall", Vec::new()),
            EventKind::UploadSkipped => ("upload_skipped", Vec::new()),
            EventKind::ClientKilled => ("client_killed", Vec::new()),
            EventKind::DecodeError { kind } => ("decode_error", vec![("kind", kind.to_string())]),
            EventKind::Bytes { dir, frame, bytes } => (
                "bytes",
                vec![
                    ("dir", dir.name().to_string()),
                    ("frame", frame.to_string()),
                    ("bytes", bytes.to_string()),
                ],
            ),
            EventKind::RoundDone { kept } => ("round_done", vec![("kept", kept.to_string())]),
        }
    }

    /// Renders the event as one JSON object (no trailing newline).
    ///
    /// Every field value here is numeric or a fixed identifier, so no
    /// JSON string escaping is needed beyond quoting.
    #[must_use]
    pub fn to_json(&self) -> String {
        let (name, fields) = self.fields();
        let mut s = format!(
            "{{\"t_ns\":{},\"round\":{},\"client\":{},\"event\":\"{}\"",
            self.nanos, self.round, self.client, name
        );
        for (k, v) in fields {
            let quoted = v.parse::<f64>().is_err();
            if quoted {
                let _ = write!(s, ",\"{k}\":\"{v}\"");
            } else {
                let _ = write!(s, ",\"{k}\":{v}");
            }
        }
        s.push('}');
        s
    }

    /// Renders the event as one `key=value` text line.
    #[must_use]
    pub fn to_text(&self) -> String {
        let (name, fields) = self.fields();
        let mut s = format!(
            "t_ns={} round={} client={} event={}",
            self.nanos, self.round, self.client, name
        );
        for (k, v) in fields {
            let _ = write!(s, " {k}={v}");
        }
        s
    }
}

struct JournalInner {
    buf: VecDeque<Event>,
    capacity: usize,
    recorded: u64,
    dropped: u64,
}

/// A bounded ring buffer of [`Event`]s.
///
/// When full, recording overwrites the oldest entry and bumps the
/// dropped counter — the journal never blocks or grows. The mutex is
/// held only for the push itself; hot loops that cannot afford even
/// that record into [`crate::LocalCells`] instead and emit no journal
/// events.
pub struct Journal {
    inner: Mutex<JournalInner>,
}

impl Journal {
    /// Default ring capacity.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// A journal holding at most `capacity` events (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(JournalInner {
                buf: VecDeque::with_capacity(capacity.max(1)),
                capacity: capacity.max(1),
                recorded: 0,
                dropped: 0,
            }),
        }
    }

    /// Appends an event, overwriting the oldest when full.
    pub fn record(&self, event: Event) {
        let mut inner = self.inner.lock().unwrap();
        if inner.buf.len() == inner.capacity {
            inner.buf.pop_front();
            inner.dropped += 1;
        }
        inner.buf.push_back(event);
        inner.recorded += 1;
    }

    /// A copy of the retained events, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        self.inner.lock().unwrap().buf.iter().copied().collect()
    }

    /// Total events ever recorded (including since-dropped ones).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.inner.lock().unwrap().recorded
    }

    /// Events overwritten because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(n: u64) -> Event {
        Event {
            nanos: n,
            round: 1,
            client: -1,
            kind: EventKind::Stall,
        }
    }

    #[test]
    fn ring_overwrites_oldest() {
        let j = Journal::new(3);
        for n in 0..5 {
            j.record(ev(n));
        }
        let kept: Vec<u64> = j.events().iter().map(|e| e.nanos).collect();
        assert_eq!(kept, vec![2, 3, 4]);
        assert_eq!(j.recorded(), 5);
        assert_eq!(j.dropped(), 2);
    }

    #[test]
    fn json_and_text_render() {
        let e = Event {
            nanos: 42,
            round: 7,
            client: 3,
            kind: EventKind::Bytes {
                dir: Dir::Up,
                frame: "upload",
                bytes: 128,
            },
        };
        assert_eq!(
            e.to_json(),
            "{\"t_ns\":42,\"round\":7,\"client\":3,\"event\":\"bytes\",\
             \"dir\":\"up\",\"frame\":\"upload\",\"bytes\":128}"
        );
        assert_eq!(
            e.to_text(),
            "t_ns=42 round=7 client=3 event=bytes dir=up frame=upload bytes=128"
        );
    }

    #[test]
    fn span_event_renders_phase_name() {
        let e = Event {
            nanos: 1,
            round: 0,
            client: -1,
            kind: EventKind::Span {
                phase: Phase::TopK,
                dur_nanos: 9,
            },
        };
        assert!(e.to_json().contains("\"phase\":\"topk\""));
        assert!(e.to_text().contains("phase=topk dur_ns=9"));
    }
}
