//! Prometheus-style text exposition: render and (for tests and tools)
//! parse it back losslessly.

use std::fmt::Write as _;

/// One exported metric value: `name{labels} value`.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
    pub name: String,
    /// Label pairs, in render order.
    pub labels: Vec<(String, String)>,
    /// The value. Rendered with Rust's shortest-round-trip `f64`
    /// formatting, so `parse_text(render_text(s)) == s` exactly.
    pub value: f64,
}

impl Sample {
    /// Convenience constructor from borrowed label pairs.
    #[must_use]
    pub fn new(name: &str, labels: &[(&str, &str)], value: f64) -> Self {
        Self {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|&(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            value,
        }
    }
}

/// A point-in-time set of [`Sample`]s.
///
/// Snapshots from [`crate::Telemetry::snapshot`] are sorted by
/// `(name, labels)`, making them independent of registration and merge
/// order; external sources (pool stats, wire stats) can be appended
/// with [`Snapshot::push`] and re-sorted.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// The samples, in render order.
    pub samples: Vec<Sample>,
}

fn escape_into(out: &mut String, v: &str) {
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
}

impl Snapshot {
    /// Appends a sample built from borrowed label pairs.
    pub fn push(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.samples.push(Sample::new(name, labels, value));
    }

    /// Sorts samples by `(name, labels)` for stable output.
    pub fn sort(&mut self) {
        self.samples
            .sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
    }

    /// The value of `name` with exactly the given labels, if present.
    #[must_use]
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| {
                s.name == name
                    && s.labels.len() == labels.len()
                    && s.labels
                        .iter()
                        .zip(labels)
                        .all(|((k, v), &(lk, lv))| k == lk && v == lv)
            })
            .map(|s| s.value)
    }

    /// Renders the snapshot as text exposition: one
    /// `name{key="value",...} value` line per sample (no `{}` when a
    /// sample has no labels). Label values are escaped (`\\`, `\"`,
    /// `\n`); values use shortest-round-trip `f64` formatting.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for s in &self.samples {
            out.push_str(&s.name);
            if !s.labels.is_empty() {
                out.push('{');
                for (i, (k, v)) in s.labels.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{k}=\"");
                    escape_into(&mut out, v);
                    out.push('"');
                }
                out.push('}');
            }
            let _ = writeln!(out, " {}", s.value);
        }
        out
    }

    /// Parses text exposition produced by [`Snapshot::render_text`]
    /// (or any Prometheus-style exposition without type/help
    /// metadata). Blank lines and `#` comment lines are skipped.
    ///
    /// # Errors
    /// Returns a message naming the first malformed line.
    pub fn parse_text(text: &str) -> Result<Self, String> {
        let mut samples = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |what: &str| format!("line {}: {what}: {raw:?}", lineno + 1);
            let (name, rest) = match line.find(['{', ' ']) {
                Some(i) => (line[..i].to_string(), &line[i..]),
                None => return Err(err("missing value")),
            };
            if name.is_empty() {
                return Err(err("missing metric name"));
            }
            let mut labels = Vec::new();
            let rest = if let Some(body) = rest.strip_prefix('{') {
                let mut chars = body.char_indices();
                let after: String;
                'outer: loop {
                    // Key up to '='.
                    let mut key = String::new();
                    for (_, c) in chars.by_ref() {
                        match c {
                            '=' => break,
                            '}' if key.is_empty() => {
                                // `{}` or trailing comma tolerance not needed:
                                // render never emits either, so treat as done.
                                after = String::new();
                                break 'outer;
                            }
                            _ => key.push(c),
                        }
                    }
                    match chars.next() {
                        Some((_, '"')) => {}
                        _ => return Err(err("label value must be quoted")),
                    }
                    let mut value = String::new();
                    let mut closed = false;
                    while let Some((_, c)) = chars.next() {
                        match c {
                            '\\' => match chars.next() {
                                Some((_, '\\')) => value.push('\\'),
                                Some((_, '"')) => value.push('"'),
                                Some((_, 'n')) => value.push('\n'),
                                _ => return Err(err("bad escape in label value")),
                            },
                            '"' => {
                                closed = true;
                                break;
                            }
                            _ => value.push(c),
                        }
                    }
                    if !closed {
                        return Err(err("unterminated label value"));
                    }
                    labels.push((key, value));
                    match chars.next() {
                        Some((_, ',')) => {}
                        Some((i, '}')) => {
                            after = body[i + 1..].to_string();
                            break;
                        }
                        _ => return Err(err("expected ',' or '}' after label")),
                    }
                }
                after
            } else {
                rest.to_string()
            };
            let value_str = rest.trim();
            if value_str.is_empty() {
                return Err(err("missing value"));
            }
            let value: f64 = value_str
                .parse()
                .map_err(|_| err("value is not a number"))?;
            samples.push(Sample {
                name,
                labels,
                value,
            });
        }
        Ok(Self { samples })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_round_trips() {
        let mut snap = Snapshot::default();
        snap.push("plain", &[], 3.0);
        snap.push(
            "labeled_total",
            &[("kind", "upload"), ("codec", "f32")],
            12.0,
        );
        snap.push("fractional", &[], 0.125);
        snap.push("huge", &[], 9.007199254740992e15);
        snap.push("tricky", &[("msg", "a \"b\"\\n\nc")], 1.0);
        snap.sort();
        let text = snap.render_text();
        let parsed = Snapshot::parse_text(&text).expect("parses");
        assert_eq!(parsed, snap);
    }

    #[test]
    fn parser_skips_comments_and_blanks() {
        let text = "# HELP x whatever\n\nx 4\n";
        let snap = Snapshot::parse_text(text).unwrap();
        assert_eq!(snap.samples.len(), 1);
        assert_eq!(snap.value("x", &[]), Some(4.0));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Snapshot::parse_text("just_a_name\n").is_err());
        assert!(Snapshot::parse_text("m{k=unquoted} 1\n").is_err());
        assert!(Snapshot::parse_text("m{k=\"open} 1\n").is_err());
        assert!(Snapshot::parse_text("m notanumber\n").is_err());
    }

    #[test]
    fn value_lookup_matches_exact_labels() {
        let mut snap = Snapshot::default();
        snap.push("m", &[("a", "1")], 5.0);
        assert_eq!(snap.value("m", &[("a", "1")]), Some(5.0));
        assert_eq!(snap.value("m", &[]), None);
        assert_eq!(snap.value("m", &[("a", "2")]), None);
    }
}
