//! The monotonic-clock seam: real time by default, manual for tests.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A source of monotonic nanosecond timestamps.
///
/// [`Clock::monotonic`] reads the OS monotonic clock relative to the
/// clock's creation instant; [`Clock::manual`] returns a clock whose
/// time only moves when the paired [`ManualHandle`] advances it, which
/// makes span durations and journal timestamps exactly reproducible in
/// tests.
#[derive(Clone, Debug)]
pub enum Clock {
    /// Real monotonic time, in nanoseconds since the clock was created.
    Monotonic(Instant),
    /// Test time, advanced explicitly through a [`ManualHandle`].
    Manual(Arc<AtomicU64>),
}

/// Advances the paired [`Clock::Manual`] clock in tests.
#[derive(Clone, Debug)]
pub struct ManualHandle(Arc<AtomicU64>);

impl Clock {
    /// A real monotonic clock starting at zero now.
    #[must_use]
    pub fn monotonic() -> Self {
        Clock::Monotonic(Instant::now())
    }

    /// A deterministic clock starting at zero, plus the handle that
    /// moves it.
    #[must_use]
    pub fn manual() -> (Self, ManualHandle) {
        let cell = Arc::new(AtomicU64::new(0));
        (Clock::Manual(Arc::clone(&cell)), ManualHandle(cell))
    }

    /// Current time in nanoseconds since this clock's origin.
    ///
    /// Saturates at `u64::MAX` nanoseconds (~584 years of uptime).
    #[must_use]
    pub fn now_nanos(&self) -> u64 {
        match self {
            Clock::Monotonic(origin) => {
                u64::try_from(origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
            }
            Clock::Manual(cell) => cell.load(Ordering::Relaxed),
        }
    }
}

impl Default for Clock {
    fn default() -> Self {
        Clock::monotonic()
    }
}

impl ManualHandle {
    /// Moves the paired manual clock forward by `nanos`.
    pub fn advance(&self, nanos: u64) {
        self.0.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Sets the paired manual clock to an absolute nanosecond value.
    pub fn set(&self, nanos: u64) {
        self.0.store(nanos, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_is_deterministic() {
        let (clock, handle) = Clock::manual();
        assert_eq!(clock.now_nanos(), 0);
        handle.advance(5);
        handle.advance(7);
        assert_eq!(clock.now_nanos(), 12);
        handle.set(3);
        assert_eq!(clock.now_nanos(), 3);
    }

    #[test]
    fn monotonic_clock_does_not_go_backwards() {
        let clock = Clock::monotonic();
        let a = clock.now_nanos();
        let b = clock.now_nanos();
        assert!(b >= a);
    }
}
