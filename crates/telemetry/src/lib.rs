//! Telemetry core for the GlueFL workspace — vendored-style, zero
//! external dependencies, matching the `vendor/` shim philosophy.
//!
//! The crate provides four pieces that the rest of the stack composes:
//!
//! * **A clock seam** ([`Clock`]): monotonic by default, injectable
//!   ([`Clock::manual`]) so tests can advance time deterministically.
//! * **A recorder** ([`Telemetry`]): named counters, gauges, and
//!   power-of-two histograms plus a fixed per-[`Phase`] span table.
//!   Hot paths that must not contend (the `gluefl-pool` work-stealing
//!   workers) record into plain per-thread [`LocalCells`] and merge
//!   once; merging is a pure sum, so snapshots are **order
//!   independent** — any interleaving of merges yields the same
//!   [`Snapshot`] (property-tested in `tests/merge_props.rs`).
//! * **A bounded event journal** ([`Journal`]): a ring buffer of typed
//!   [`Event`]s (spans, grants, deadlines, stalls, skips, kills,
//!   decode errors, measured bytes) that overwrites the oldest entry
//!   when full and counts what it dropped. Events render as JSON
//!   lines or text.
//! * **Export surfaces**: [`Snapshot`] renders to Prometheus-style
//!   `name{label="value"} value` text exposition and parses back
//!   losslessly ([`Snapshot::parse_text`]), and [`Logger`] is the
//!   structured (text/JSON) replacement for ad-hoc `println!` in the
//!   binaries.
//!
//! # Zero overhead when disabled
//!
//! Instrumented code holds an `Option<Arc<Telemetry>>` (or
//! `Option<&Telemetry>`) and branches **once per phase or per frame**,
//! never per element. With `None` the entire layer is a handful of
//! predictable untaken branches per round — invisible in the
//! `expt kernels` ledger. There is no global state and no feature
//! flag to misconfigure: a `Simulation` or transport server without a
//! recorder attached simply records nothing.
//!
//! # Example
//!
//! ```
//! use gluefl_telemetry::{Clock, Phase, Snapshot, Telemetry};
//!
//! let (clock, handle) = Clock::manual();
//! let tel = Telemetry::with_clock(clock);
//! let frames = tel.counter("wire_frames_total", &[("kind", "upload")]);
//! frames.add(3);
//! handle.advance(1_000);
//! tel.record_phase(Phase::Train, 1_000, 0, -1);
//! let text = tel.snapshot().render_text();
//! let parsed = Snapshot::parse_text(&text).unwrap();
//! assert_eq!(parsed, tel.snapshot());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod clock;
mod expo;
mod journal;
mod log;
mod phase;
mod recorder;

pub use clock::{Clock, ManualHandle};
pub use expo::{Sample, Snapshot};
pub use journal::{Dir, Event, EventKind, Journal};
pub use log::{Field, Level, LogFormat, Logger};
pub use phase::{Phase, PHASE_COUNT};
pub use recorder::{Counter, Gauge, Histogram, LocalCells, Span, Telemetry, HIST_BUCKETS};
