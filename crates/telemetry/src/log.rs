//! The structured logger the binaries use instead of ad-hoc
//! `println!`: levelled `event key=value` lines in text or JSON.

use std::fmt::Write as _;
use std::io::Write as _;
use std::str::FromStr;

/// Log severity, in increasing order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Development noise.
    Debug,
    /// Normal operation.
    Info,
    /// Something degraded but handled (a skipped upload, a stall).
    Warn,
    /// Something failed.
    Error,
}

impl Level {
    /// Stable lower-case name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

impl FromStr for Level {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "debug" => Ok(Level::Debug),
            "info" => Ok(Level::Info),
            "warn" => Ok(Level::Warn),
            "error" => Ok(Level::Error),
            other => Err(format!(
                "unknown log level {other:?} (debug|info|warn|error)"
            )),
        }
    }
}

/// Output encoding, selected by `--log-format json|text`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LogFormat {
    /// `level event key=value ...` lines.
    #[default]
    Text,
    /// One JSON object per line.
    Json,
}

impl FromStr for LogFormat {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "text" => Ok(LogFormat::Text),
            "json" => Ok(LogFormat::Json),
            other => Err(format!("unknown log format {other:?} (text|json)")),
        }
    }
}

/// A field value. Borrowed strings keep call sites allocation-free.
#[derive(Debug, Clone, Copy)]
pub enum Field<'a> {
    /// A string value.
    Str(&'a str),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float, rendered with shortest-round-trip formatting.
    F64(f64),
    /// A boolean.
    Bool(bool),
    /// An unsigned integer rendered as `0x`-prefixed 16-digit hex
    /// (parameter fingerprints).
    Hex(u64),
}

fn json_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// A levelled structured logger writing one line per event.
///
/// Text mode renders `level event key=value ...` (string values with
/// spaces are quoted), JSON mode renders one object per line. Events
/// below the configured level are dropped before any formatting work.
#[derive(Debug)]
pub struct Logger {
    level: Level,
    format: LogFormat,
    to_stderr: bool,
}

impl Logger {
    /// A logger writing to stdout.
    #[must_use]
    pub fn stdout(level: Level, format: LogFormat) -> Self {
        Self {
            level,
            format,
            to_stderr: false,
        }
    }

    /// A logger writing to stderr.
    #[must_use]
    pub fn stderr(level: Level, format: LogFormat) -> Self {
        Self {
            level,
            format,
            to_stderr: true,
        }
    }

    /// The configured format.
    #[must_use]
    pub fn format(&self) -> LogFormat {
        self.format
    }

    /// True if `level` would be emitted.
    #[must_use]
    pub fn enabled(&self, level: Level) -> bool {
        level >= self.level
    }

    /// Formats one event line without writing it (used by tests and by
    /// [`Logger::log`]).
    #[must_use]
    pub fn render(&self, level: Level, event: &str, fields: &[(&str, Field<'_>)]) -> String {
        match self.format {
            LogFormat::Text => {
                let mut s = format!("{} {}", level.name(), event);
                for (k, v) in fields {
                    let _ = match v {
                        Field::Str(t) if t.contains(' ') || t.is_empty() => {
                            write!(s, " {k}={t:?}")
                        }
                        Field::Str(t) => write!(s, " {k}={t}"),
                        Field::U64(n) => write!(s, " {k}={n}"),
                        Field::I64(n) => write!(s, " {k}={n}"),
                        Field::F64(x) => write!(s, " {k}={x}"),
                        Field::Bool(b) => write!(s, " {k}={b}"),
                        Field::Hex(n) => write!(s, " {k}={n:#018x}"),
                    };
                }
                s
            }
            LogFormat::Json => {
                let mut s = format!("{{\"level\":\"{}\",\"event\":\"", level.name());
                json_escape_into(&mut s, event);
                s.push('"');
                for (k, v) in fields {
                    let _ = write!(s, ",\"{k}\":");
                    match v {
                        Field::Str(t) => {
                            s.push('"');
                            json_escape_into(&mut s, t);
                            s.push('"');
                        }
                        Field::U64(n) => {
                            let _ = write!(s, "{n}");
                        }
                        Field::I64(n) => {
                            let _ = write!(s, "{n}");
                        }
                        Field::F64(x) if x.is_finite() => {
                            let _ = write!(s, "{x}");
                        }
                        Field::F64(x) => {
                            let _ = write!(s, "\"{x}\"");
                        }
                        Field::Bool(b) => {
                            let _ = write!(s, "{b}");
                        }
                        Field::Hex(n) => {
                            let _ = write!(s, "\"{n:#018x}\"");
                        }
                    }
                }
                s.push('}');
                s
            }
        }
    }

    /// Emits one event at `level` with the given fields.
    pub fn log(&self, level: Level, event: &str, fields: &[(&str, Field<'_>)]) {
        if !self.enabled(level) {
            return;
        }
        let line = self.render(level, event, fields);
        if self.to_stderr {
            let _ = writeln!(std::io::stderr().lock(), "{line}");
        } else {
            let _ = writeln!(std::io::stdout().lock(), "{line}");
        }
    }

    /// [`Logger::log`] at [`Level::Debug`].
    pub fn debug(&self, event: &str, fields: &[(&str, Field<'_>)]) {
        self.log(Level::Debug, event, fields);
    }

    /// [`Logger::log`] at [`Level::Info`].
    pub fn info(&self, event: &str, fields: &[(&str, Field<'_>)]) {
        self.log(Level::Info, event, fields);
    }

    /// [`Logger::log`] at [`Level::Warn`].
    pub fn warn(&self, event: &str, fields: &[(&str, Field<'_>)]) {
        self.log(Level::Warn, event, fields);
    }

    /// [`Logger::log`] at [`Level::Error`].
    pub fn error(&self, event: &str, fields: &[(&str, Field<'_>)]) {
        self.log(Level::Error, event, fields);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_lines_keep_grepable_fields() {
        let log = Logger::stdout(Level::Info, LogFormat::Text);
        let line = log.render(
            Level::Info,
            "done",
            &[
                ("strategy", Field::Str("gluefl")),
                ("params_fnv", Field::Hex(0x2198)),
                ("skipped", Field::U64(0)),
                ("dead", Field::U64(0)),
            ],
        );
        assert_eq!(
            line,
            "info done strategy=gluefl params_fnv=0x0000000000002198 skipped=0 dead=0"
        );
        assert!(line.contains("skipped=0 dead=0"));
    }

    #[test]
    fn json_lines_are_valid_objects() {
        let log = Logger::stdout(Level::Debug, LogFormat::Json);
        let line = log.render(
            Level::Warn,
            "client skipped",
            &[("id", Field::U64(3)), ("reason", Field::Str("stall \"x\""))],
        );
        assert_eq!(
            line,
            "{\"level\":\"warn\",\"event\":\"client skipped\",\"id\":3,\
             \"reason\":\"stall \\\"x\\\"\"}"
        );
    }

    #[test]
    fn level_filtering_drops_quiet_events() {
        let log = Logger::stdout(Level::Warn, LogFormat::Text);
        assert!(!log.enabled(Level::Info));
        assert!(log.enabled(Level::Warn));
        assert!(log.enabled(Level::Error));
    }

    #[test]
    fn levels_and_formats_parse() {
        assert_eq!("warn".parse::<Level>().unwrap(), Level::Warn);
        assert!("loud".parse::<Level>().is_err());
        assert_eq!("json".parse::<LogFormat>().unwrap(), LogFormat::Json);
        assert!("xml".parse::<LogFormat>().is_err());
    }
}
