//! The fixed round-phase enum shared by every span in the stack.

/// Number of [`Phase`] variants; sizes the per-phase span tables.
pub const PHASE_COUNT: usize = 9;

/// The phases of one federated round, in execution order.
///
/// The set is fixed on purpose: every span anywhere in the stack maps
/// onto one of these nine phases, so per-phase tables are plain arrays
/// (`[u64; PHASE_COUNT]`) with no allocation or hashing on the hot
/// path, and `trace.csv` columns are stable across tools.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Phase {
    /// Client sampling: drawing the invited cohort.
    Draw,
    /// Serializing and accounting the model/mask broadcast.
    Broadcast,
    /// Local SGD steps on every invited client.
    Train,
    /// Compressing deltas and serializing upload frames.
    Encode,
    /// Parsing received upload frames back into sparse updates.
    Decode,
    /// Streaming each decoded update into the aggregate.
    Fold,
    /// The aggregator's final masked top-k selection.
    TopK,
    /// Applying the masked update to the global model.
    Apply,
    /// Sticky-cohort rebalancing at end of round.
    Rebalance,
}

impl Phase {
    /// All phases in execution order — iterate this for stable output.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::Draw,
        Phase::Broadcast,
        Phase::Train,
        Phase::Encode,
        Phase::Decode,
        Phase::Fold,
        Phase::TopK,
        Phase::Apply,
        Phase::Rebalance,
    ];

    /// Stable lower-case name, used as the `phase` label value and the
    /// `trace.csv` column suffix.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Phase::Draw => "draw",
            Phase::Broadcast => "broadcast",
            Phase::Train => "train",
            Phase::Encode => "encode",
            Phase::Decode => "decode",
            Phase::Fold => "fold",
            Phase::TopK => "topk",
            Phase::Apply => "apply",
            Phase::Rebalance => "rebalance",
        }
    }

    /// Index into `[_; PHASE_COUNT]` tables (execution order).
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_match_all_order() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }

    #[test]
    fn names_are_unique() {
        for a in Phase::ALL {
            for b in Phase::ALL {
                if a != b {
                    assert_ne!(a.name(), b.name());
                }
            }
        }
    }
}
