//! Masking and compression strategies for federated learning.
//!
//! This crate implements the model-masking half of the GlueFL paper and
//! its baselines, all operating on flat `&[f32]` deltas:
//!
//! * [`stc`] — Sparse Ternary Compression (Sattler et al. 2019): top-`q`
//!   sparsification of client gradients and server updates (Algorithm 1),
//!   plus the optional ternary quantization the paper factors out
//!   (footnote 1).
//! * [`mask_shift`] — GlueFL's gradual mask shifting (§3.2, Algorithm 3):
//!   split a client delta into the shared-mask part `M_t ⊙ Δ` and the
//!   locally-important part `top_{q−q_shr}(¬M_t ⊙ Δ)`, and shift the
//!   server's shared mask by re-selecting the top `q_shr` of the combined
//!   aggregate.
//! * [`Apf`] — Adaptive Parameter Freezing (Chen et al. 2021): per-
//!   parameter effective-perturbation tracking with doubling freeze
//!   periods.
//! * [`ErrorCompensator`] — per-client error feedback with GlueFL's
//!   propensity re-scaling `(ν^{φ(t)}/ν^t)·h^{φ(t)}` (§3.3, Equation 7);
//!   supports the paper's three ablation arms None / EC / REC
//!   (Figure 11).
//!
//! # Example
//!
//! ```
//! use gluefl_compress::mask_shift;
//! use gluefl_tensor::BitMask;
//!
//! let delta = vec![5.0, -0.1, 3.0, 0.2, -4.0, 0.3, 0.1, 2.0];
//! let shared = BitMask::from_indices(8, [0usize, 2]); // q_shr = 25%
//! // Client: dense values under the shared mask + top-1 unique outside.
//! let split = mask_shift::client_split(&delta, &shared, 1);
//! assert_eq!(split.shared.indices(), &[0, 2]);
//! assert_eq!(split.unique.indices(), &[4]); // |-4.0| largest outside
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod apf;
mod error_comp;
pub mod mask_shift;
pub mod stc;

pub use apf::{Apf, ApfConfig};
pub use error_comp::{CompensationMode, ErrorCompensator};
