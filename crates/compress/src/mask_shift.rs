//! GlueFL's gradual mask shifting (§3.2, Algorithm 3).
//!
//! The server holds a *shared mask* `M_t` with ratio `q_shr < q`. Each
//! round:
//!
//! 1. clients send (a) the values of their delta under `M_t` (positions
//!    are already known to the server — zero position bytes) and (b) their
//!    top `q − q_shr` coordinates *outside* `M_t` ([`client_split`]);
//! 2. the server aggregates both parts, updates the model, and *shifts*
//!    the mask to the top `q_shr` coordinates of the combined aggregate
//!    ([`shift_mask`]), so consecutive model updates overlap in at least
//!    `q_shr·d` positions;
//! 3. every `I` rounds the mask is *regenerated* from the unique part only
//!    ([`regenerate_mask`], §3.3), letting newly-unstable parameters enter
//!    the mask wholesale.

use crate::stc::keep_count;
use gluefl_tensor::{
    top_k_abs_masked, top_k_abs_masked_into, top_k_abs_packed_into, BitMask, SparseUpdate,
    TopKScope, TopKScratch,
};

/// A client's two-part masked upload (Algorithm 3 lines 16–17).
#[derive(Debug, Clone, PartialEq)]
pub struct ClientSplit {
    /// `Δ̃_shr = M_t ⊙ Δ`: values under the shared mask (dense w.r.t. the
    /// mask, so the upload needs no position bytes).
    pub shared: SparseUpdate,
    /// `Δ̃_uni = top_{q−q_shr}(¬M_t ⊙ Δ)`: locally-important coordinates
    /// outside the mask (uploaded with explicit positions).
    pub unique: SparseUpdate,
}

impl ClientSplit {
    /// Total uploaded payload bytes: mask-aligned values plus explicit
    /// sparse coordinates.
    #[must_use]
    pub fn upload_bytes(&self) -> u64 {
        self.shared.wire_cost_known_mask().total_bytes() + self.unique.wire_cost().total_bytes()
    }
}

/// Splits a client delta against the shared mask: dense values under
/// `mask` plus the `unique_k` largest-magnitude coordinates outside it.
///
/// # Panics
/// Panics if `delta.len() != mask.len()`.
///
/// # Example
/// ```
/// use gluefl_compress::mask_shift::client_split;
/// use gluefl_tensor::BitMask;
/// let delta = vec![1.0, -7.0, 2.0, 0.5];
/// let mask = BitMask::from_indices(4, [0usize]);
/// let split = client_split(&delta, &mask, 2);
/// assert_eq!(split.shared.indices(), &[0]);
/// assert_eq!(split.unique.indices(), &[1, 2]);
/// ```
#[must_use]
pub fn client_split(delta: &[f32], mask: &BitMask, unique_k: usize) -> ClientSplit {
    assert_eq!(delta.len(), mask.len(), "delta/mask length mismatch");
    let shared = SparseUpdate::from_dense_masked(delta, mask);
    let idx = top_k_abs_masked(delta, unique_k, TopKScope::Outside(mask));
    let unique = SparseUpdate::gather(delta, &idx);
    ClientSplit { shared, unique }
}

/// Server-side mask shift (Algorithm 3 line 26): the next shared mask is
/// the top `q_shr` of the *combined* aggregated update `Δ̃_shr + Δ̃_uni`.
///
/// `eligible` restricts which positions may enter the mask (used to keep
/// BatchNorm statistics out of masks; pass `None` to allow everything).
///
/// # Panics
/// Panics if `q_shr` is outside `[0, 1]` or `eligible` has a different
/// length.
#[must_use]
pub fn shift_mask(combined: &[f32], q_shr: f64, eligible: Option<&BitMask>) -> BitMask {
    let mut scratch = TopKScratch::new();
    shift_mask_with(combined, q_shr, eligible, &mut scratch)
}

/// Allocation-aware [`shift_mask`]: routes the top-k selection through a
/// caller-owned [`TopKScratch`] (the round hot path reuses one per
/// simulation).
///
/// # Panics
/// Same contract as [`shift_mask`].
#[must_use]
pub fn shift_mask_with(
    combined: &[f32],
    q_shr: f64,
    eligible: Option<&BitMask>,
    scratch: &mut TopKScratch,
) -> BitMask {
    let mut out = BitMask::zeros(combined.len());
    shift_mask_into(combined, q_shr, eligible, scratch, &mut out);
    out
}

/// Fully pooled [`shift_mask`]: the selection runs through a caller-owned
/// [`TopKScratch`] and the next mask is written into `out` in place
/// (reset to `combined.len()` zeros first), so a simulation can shift its
/// shared mask every round without allocating.
///
/// # Panics
/// Same contract as [`shift_mask`].
pub fn shift_mask_into(
    combined: &[f32],
    q_shr: f64,
    eligible: Option<&BitMask>,
    scratch: &mut TopKScratch,
    out: &mut BitMask,
) {
    let k = keep_count(combined.len(), q_shr);
    let idx = match eligible {
        Some(e) => {
            assert_eq!(e.len(), combined.len(), "eligible mask length mismatch");
            top_k_abs_masked_into(combined, k, TopKScope::Inside(e), scratch)
        }
        None => top_k_abs_masked_into(combined, k, TopKScope::All, scratch),
    };
    out.reset(combined.len());
    for &i in idx {
        out.set(i, true);
    }
}

/// [`shift_mask_into`] over a *packed* combined update: `support` holds
/// the aggregate's support and `packed` its values at the set positions in
/// ascending order (exact zeros everywhere else). Selects the same next
/// mask as densifying and calling [`shift_mask_into`] — pinned bitwise by
/// the tests here — while scanning only `O(|support| + d/64)` instead of
/// `O(d)` keys.
///
/// # Panics
/// Panics if `packed.len()` differs from the support popcount, `q_shr` is
/// outside `[0, 1]`, or `eligible` has a different length.
pub fn shift_mask_packed_into(
    support: &BitMask,
    packed: &[f32],
    q_shr: f64,
    eligible: Option<&BitMask>,
    scratch: &mut TopKScratch,
    out: &mut BitMask,
) {
    let dim = support.len();
    let k = keep_count(dim, q_shr);
    let idx = match eligible {
        Some(e) => {
            assert_eq!(e.len(), dim, "eligible mask length mismatch");
            top_k_abs_packed_into(support, packed, k, TopKScope::Inside(e), scratch)
        }
        None => top_k_abs_packed_into(support, packed, k, TopKScope::All, scratch),
    };
    out.reset(dim);
    for &i in idx {
        out.set(i, true);
    }
}

/// Mask regeneration (§3.3): rebuild the shared mask from the *unique*
/// aggregate only, as if `q_shr = 0` that round — the mask is re-seeded
/// from fresh locally-important coordinates rather than shifted.
///
/// # Panics
/// Same contract as [`shift_mask`].
#[must_use]
pub fn regenerate_mask(
    unique_aggregate: &[f32],
    q_shr: f64,
    eligible: Option<&BitMask>,
) -> BitMask {
    shift_mask(unique_aggregate, q_shr, eligible)
}

/// Lower bound on the overlap of two consecutive *model updates* under
/// mask shifting: both rounds' updates cover the shared mask, so they
/// overlap in at least `q_shr·d` positions (§3.2, last paragraph).
///
/// Returns `round(q_shr · dim)` — useful for assertions and planning.
#[must_use]
pub fn min_update_overlap(dim: usize, q_shr: f64) -> usize {
    keep_count(dim, q_shr)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delta() -> Vec<f32> {
        vec![5.0, -0.1, 3.0, 0.2, -4.0, 0.3, 0.1, 2.0]
    }

    #[test]
    fn split_partitions_support() {
        let d = delta();
        let mask = BitMask::from_indices(8, [0usize, 2]);
        let s = client_split(&d, &mask, 3);
        // shared support == mask; unique disjoint from mask.
        assert_eq!(s.shared.support(), mask);
        assert_eq!(s.unique.support().overlap(&mask), 0);
        assert_eq!(s.unique.nnz(), 3);
    }

    #[test]
    fn split_unique_takes_largest_outside() {
        let d = delta();
        let mask = BitMask::from_indices(8, [0usize, 2]);
        let s = client_split(&d, &mask, 2);
        // Outside mask: |-4.0| at 4 and |2.0| at 7 dominate.
        assert_eq!(s.unique.indices(), &[4, 7]);
    }

    #[test]
    fn split_with_zero_unique() {
        let d = delta();
        let mask = BitMask::from_indices(8, [1usize]);
        let s = client_split(&d, &mask, 0);
        assert!(s.unique.is_empty());
        assert_eq!(s.shared.nnz(), 1);
    }

    #[test]
    fn upload_bytes_counts_known_mask_values_without_positions() {
        let d = delta();
        let mask = BitMask::from_indices(8, [0usize, 2, 4]);
        let s = client_split(&d, &mask, 1);
        // shared: 3 values × 4B (+header); unique: 1 value + positions.
        assert_eq!(s.shared.wire_cost_known_mask().payload_bytes(), 12);
        assert!(s.unique.wire_cost().position_bytes > 0);
        assert!(s.upload_bytes() >= 12 + 4);
    }

    #[test]
    fn shift_selects_top_qshr_of_combined() {
        let combined = vec![0.1f32, 9.0, 0.2, -8.0, 0.3, 7.0, 0.4, -6.0];
        let m = shift_mask(&combined, 0.25, None);
        assert_eq!(m.iter_ones().collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn shift_into_matches_allocating_form() {
        let combined = vec![0.1f32, 9.0, 0.2, -8.0, 0.3, 7.0, 0.4, -6.0];
        let mut scratch = TopKScratch::new();
        // A dirty, differently-sized mask must be fully overwritten.
        let mut out = BitMask::ones(3);
        shift_mask_into(&combined, 0.25, None, &mut scratch, &mut out);
        assert_eq!(out, shift_mask(&combined, 0.25, None));
    }

    /// The packed shift must select exactly the mask the dense shift
    /// selects on the densified vector — across sparse supports, heavy
    /// ties, zero fill-up (k larger than the support), and an eligibility
    /// restriction.
    #[test]
    fn packed_shift_matches_dense_shift() {
        let dim = 300;
        let mut scratch = TopKScratch::new();
        for (trial, q_shr) in [(0u64, 0.05), (1, 0.2), (2, 0.5), (3, 0.9)] {
            // Deterministic pseudo-random support + values with ties.
            let mut support = BitMask::zeros(dim);
            let mut packed = Vec::new();
            let mut dense = vec![0.0f32; dim];
            for (i, slot) in dense.iter_mut().enumerate() {
                let h = (i as u64).wrapping_mul(2654435761).wrapping_add(trial * 97);
                if h.is_multiple_of(5) {
                    let v = ((h % 13) as f32 - 6.0) / 4.0; // quantized → ties
                    support.set(i, true);
                    packed.push(v);
                    *slot = v;
                }
            }
            for eligible in [
                None,
                Some(BitMask::from_indices(dim, (0..dim).filter(|i| i % 3 != 0))),
            ] {
                let mut want = BitMask::zeros(dim);
                shift_mask_into(&dense, q_shr, eligible.as_ref(), &mut scratch, &mut want);
                let mut got = BitMask::ones(7); // dirty, wrong size
                shift_mask_packed_into(
                    &support,
                    &packed,
                    q_shr,
                    eligible.as_ref(),
                    &mut scratch,
                    &mut got,
                );
                assert_eq!(
                    got,
                    want,
                    "trial {trial} q_shr {q_shr} eligible {}",
                    eligible.is_some()
                );
            }
        }
    }

    #[test]
    fn consecutive_masks_overlap_when_values_persist() {
        // If the combined aggregate barely changes, the shifted mask is
        // nearly identical round over round.
        let base: Vec<f32> = (0..100).map(|i| ((i * 37) % 100) as f32 / 10.0).collect();
        let m1 = shift_mask(&base, 0.2, None);
        let mut drifted = base.clone();
        for v in drifted.iter_mut().take(5) {
            *v += 0.01;
        }
        let m2 = shift_mask(&drifted, 0.2, None);
        assert!(m1.overlap(&m2) >= 18, "overlap {}", m1.overlap(&m2));
    }

    #[test]
    fn eligible_restriction_is_respected() {
        let combined = vec![9.0f32, 8.0, 7.0, 6.0];
        let eligible = BitMask::from_indices(4, [2usize, 3]);
        let m = shift_mask(&combined, 0.5, Some(&eligible));
        assert_eq!(m.iter_ones().collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn regenerate_uses_unique_aggregate() {
        let unique_agg = vec![0.0f32, 0.0, 5.0, 4.0, 0.0, 0.0];
        let m = regenerate_mask(&unique_agg, 1.0 / 3.0, None);
        assert_eq!(m.iter_ones().collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn min_overlap_formula() {
        assert_eq!(min_update_overlap(1000, 0.16), 160);
        assert_eq!(min_update_overlap(10, 0.0), 0);
    }

    #[test]
    #[should_panic(expected = "delta/mask length mismatch")]
    fn split_length_mismatch_panics() {
        let _ = client_split(&[1.0], &BitMask::zeros(2), 1);
    }
}
