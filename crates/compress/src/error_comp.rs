//! Error compensation with sticky-sampling re-scaling (§3.3, Eq. 7).

use std::collections::HashMap;

/// The paper's Figure-11 ablation arms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CompensationMode {
    /// No error feedback: compression residuals are dropped.
    None,
    /// Classic error feedback: `Δ ← Δ + h^{φ(t)}` (no re-scaling).
    Raw,
    /// GlueFL's re-scaled compensation (Equation 7):
    /// `Δ ← Δ + (ν^{φ(t)}/ν^t)·h^{φ(t)}`, making the carried-over residual
    /// consistent with the aggregation weight the client has *now*.
    #[default]
    Rescaled,
}

impl std::str::FromStr for CompensationMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "none" => Ok(CompensationMode::None),
            "ec" | "raw" => Ok(CompensationMode::Raw),
            "rec" | "rescaled" => Ok(CompensationMode::Rescaled),
            other => Err(format!("unknown compensation mode '{other}' (none|ec|rec)")),
        }
    }
}

/// Per-client compensation memory held by the framework.
///
/// For each client the compensator remembers the residual `h` of the last
/// round the client participated in (`Δ` minus what was actually sent)
/// together with the aggregation weight `ν` applied that round. On the
/// client's next participation, [`ErrorCompensator::apply`] adds the
/// (optionally re-scaled) residual into the new delta before compression,
/// and [`ErrorCompensator::record`] stores the new residual.
///
/// # Example
///
/// ```
/// use gluefl_compress::{CompensationMode, ErrorCompensator};
/// let mut ec = ErrorCompensator::new(CompensationMode::Rescaled, 4);
/// let mut delta = vec![1.0f32, 0.0, 0.0, 0.0];
/// ec.apply(7, &mut delta, 2.0); // first round: no memory, no change
/// assert_eq!(delta, vec![1.0, 0.0, 0.0, 0.0]);
/// // Suppose compression kept only half of it:
/// ec.record(7, &delta, &[0.5, 0.0, 0.0, 0.0], 2.0);
/// let mut next = vec![0.0f32; 4];
/// ec.apply(7, &mut next, 4.0); // re-scaled by ν_old/ν_new = 0.5
/// assert_eq!(next, vec![0.25, 0.0, 0.0, 0.0]);
/// ```
#[derive(Debug, Clone)]
pub struct ErrorCompensator {
    mode: CompensationMode,
    dim: usize,
    memory: HashMap<usize, ClientMemory>,
}

#[derive(Debug, Clone)]
struct ClientMemory {
    residual: Vec<f32>,
    weight: f64,
}

impl ErrorCompensator {
    /// Creates a compensator for `dim`-dimensional deltas.
    #[must_use]
    pub fn new(mode: CompensationMode, dim: usize) -> Self {
        Self {
            mode,
            dim,
            memory: HashMap::new(),
        }
    }

    /// The configured mode.
    #[must_use]
    pub fn mode(&self) -> CompensationMode {
        self.mode
    }

    /// Number of clients with stored residuals.
    #[must_use]
    pub fn tracked_clients(&self) -> usize {
        self.memory.len()
    }

    /// Adds the client's carried-over residual into `delta` before
    /// compression. `current_weight` is the aggregation weight `ν^t_i`
    /// that will be applied to this client this round.
    ///
    /// No-op in [`CompensationMode::None`] or when the client has no
    /// stored residual.
    ///
    /// # Panics
    /// Panics if `delta.len() != dim` or `current_weight <= 0` (when a
    /// residual exists and re-scaling is enabled).
    pub fn apply(&mut self, client: usize, delta: &mut [f32], current_weight: f64) {
        assert_eq!(delta.len(), self.dim, "delta dimension mismatch");
        if self.mode == CompensationMode::None {
            return;
        }
        let Some(mem) = self.memory.get(&client) else {
            return;
        };
        let scale = match self.mode {
            CompensationMode::None => unreachable!("handled above"),
            CompensationMode::Raw => 1.0,
            CompensationMode::Rescaled => {
                assert!(current_weight > 0.0, "aggregation weight must be positive");
                (mem.weight / current_weight) as f32
            }
        };
        for (d, h) in delta.iter_mut().zip(&mem.residual) {
            *d += scale * h;
        }
    }

    /// Stores the new residual `h = Δ − sent` for the client, along with
    /// the weight used this round. No-op in [`CompensationMode::None`].
    ///
    /// # Panics
    /// Panics if the slices differ in length from `dim`.
    pub fn record(&mut self, client: usize, delta: &[f32], sent_dense: &[f32], weight: f64) {
        assert_eq!(delta.len(), self.dim, "delta dimension mismatch");
        assert_eq!(sent_dense.len(), self.dim, "sent dimension mismatch");
        if self.mode == CompensationMode::None {
            return;
        }
        let mem = self.residual_slot(client, weight);
        for ((r, d), s) in mem.iter_mut().zip(delta).zip(sent_dense) {
            *r = d - s;
        }
    }

    /// Like [`ErrorCompensator::record`], with the sent update given as
    /// sparse parts instead of a dense vector: the residual is
    /// `Δ − Σ parts`. Parts must have pairwise-disjoint supports (as the
    /// shared/unique split of Algorithm 3 does); an overlapping position
    /// would be subtracted twice.
    ///
    /// This is the allocation-free form used by the round hot path — no
    /// dense `sent` buffer is materialised.
    ///
    /// # Panics
    /// Panics if `delta.len() != dim` or any part's dimension differs.
    pub fn record_sent_parts(
        &mut self,
        client: usize,
        delta: &[f32],
        sent_parts: &[&gluefl_tensor::SparseUpdate],
        weight: f64,
    ) {
        assert_eq!(delta.len(), self.dim, "delta dimension mismatch");
        for part in sent_parts {
            assert_eq!(part.dim(), self.dim, "sent part dimension mismatch");
        }
        if self.mode == CompensationMode::None {
            return;
        }
        let mem = self.residual_slot(client, weight);
        mem.copy_from_slice(delta);
        for part in sent_parts {
            for (i, v) in part.iter() {
                mem[i] -= v;
            }
        }
    }

    /// Folds the wire codec's loss into a client's residual bank after
    /// its upload was serialized: `sent` is what the strategy handed the
    /// encoder at `indices`, `shipped` is what a lossy codec actually
    /// delivered to the receiver. The true residual of the round is
    /// `Δ − shipped = (Δ − sent) + (sent − shipped)`; [`Self::record`] /
    /// [`Self::record_sent_parts`] already stored the first term, so this
    /// adds the second. No-op when compensation is off or the client has
    /// no stored memory (nothing was recorded this round); the stored
    /// weight is untouched — codec loss happened at the same reference
    /// weight as the top-k loss.
    ///
    /// # Panics
    /// Panics if the three slices disagree in length or an index is out
    /// of range for the model dimension.
    pub fn fold_shipped_error(
        &mut self,
        client: usize,
        indices: &[u32],
        sent: &[f32],
        shipped: &[f32],
    ) {
        assert_eq!(indices.len(), sent.len());
        assert_eq!(sent.len(), shipped.len());
        if self.mode == CompensationMode::None {
            return;
        }
        let Some(mem) = self.memory.get_mut(&client) else {
            return;
        };
        for j in 0..indices.len() {
            mem.residual[indices[j] as usize] += sent[j] - shipped[j];
        }
    }

    /// Returns the client's residual buffer (reused across rounds once a
    /// client has participated) with the stored weight updated.
    fn residual_slot(&mut self, client: usize, weight: f64) -> &mut [f32] {
        let mem = self.memory.entry(client).or_insert_with(|| ClientMemory {
            residual: vec![0.0; self.dim],
            weight,
        });
        mem.weight = weight;
        &mut mem.residual
    }

    /// Drops a client's stored residual (e.g. when it leaves the
    /// population).
    pub fn forget(&mut self, client: usize) {
        self.memory.remove(&client);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_mode_is_inert() {
        let mut ec = ErrorCompensator::new(CompensationMode::None, 3);
        ec.record(0, &[1.0, 1.0, 1.0], &[0.0, 0.0, 0.0], 1.0);
        assert_eq!(ec.tracked_clients(), 0);
        let mut d = vec![2.0f32, 2.0, 2.0];
        ec.apply(0, &mut d, 1.0);
        assert_eq!(d, vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn raw_mode_adds_residual_unscaled() {
        let mut ec = ErrorCompensator::new(CompensationMode::Raw, 2);
        ec.record(1, &[1.0, -1.0], &[0.25, 0.0], 5.0);
        let mut d = vec![0.0f32, 0.0];
        ec.apply(1, &mut d, 0.5); // weights ignored in Raw mode
        assert_eq!(d, vec![0.75, -1.0]);
    }

    #[test]
    fn rescaled_mode_uses_weight_ratio() {
        let mut ec = ErrorCompensator::new(CompensationMode::Rescaled, 1);
        // residual 1.0 stored with ν=6.
        ec.record(2, &[1.0], &[0.0], 6.0);
        let mut d = vec![0.0f32];
        ec.apply(2, &mut d, 3.0); // ν_old/ν_new = 2
        assert_eq!(d, vec![2.0]);
    }

    #[test]
    fn first_participation_has_no_compensation() {
        let mut ec = ErrorCompensator::new(CompensationMode::Rescaled, 2);
        let mut d = vec![1.0f32, 2.0];
        ec.apply(9, &mut d, 1.0);
        assert_eq!(d, vec![1.0, 2.0]);
    }

    #[test]
    fn residual_telescopes_to_exact_sum() {
        // Invariant of error feedback: sent_total + residual == delta_total.
        let mut ec = ErrorCompensator::new(CompensationMode::Raw, 4);
        let mut sent_total = [0.0f64; 4];
        let mut delta_total = [0.0f64; 4];
        let deltas = [
            vec![1.0f32, -2.0, 0.5, 0.0],
            vec![0.5f32, 1.0, -0.25, 2.0],
            vec![-1.0f32, 0.0, 1.0, 1.0],
        ];
        for delta in &deltas {
            let mut d = delta.clone();
            ec.apply(0, &mut d, 1.0);
            // "Compression": keep only the first two coordinates.
            let sent = vec![d[0], d[1], 0.0, 0.0];
            ec.record(0, &d, &sent, 1.0);
            for i in 0..4 {
                sent_total[i] += f64::from(sent[i]);
                delta_total[i] += f64::from(delta[i]);
            }
        }
        // After the last round, residual = delta_total - sent_total.
        let mut probe = vec![0.0f32; 4];
        ec.apply(0, &mut probe, 1.0);
        for i in 0..4 {
            assert!(
                (f64::from(probe[i]) - (delta_total[i] - sent_total[i])).abs() < 1e-5,
                "coordinate {i}"
            );
        }
    }

    #[test]
    fn forget_removes_memory() {
        let mut ec = ErrorCompensator::new(CompensationMode::Raw, 1);
        ec.record(3, &[1.0], &[0.0], 1.0);
        assert_eq!(ec.tracked_clients(), 1);
        ec.forget(3);
        let mut d = vec![0.0f32];
        ec.apply(3, &mut d, 1.0);
        assert_eq!(d, vec![0.0]);
    }

    #[test]
    fn mode_parsing() {
        assert_eq!(
            "none".parse::<CompensationMode>().unwrap(),
            CompensationMode::None
        );
        assert_eq!(
            "ec".parse::<CompensationMode>().unwrap(),
            CompensationMode::Raw
        );
        assert_eq!(
            "rec".parse::<CompensationMode>().unwrap(),
            CompensationMode::Rescaled
        );
        assert!("x".parse::<CompensationMode>().is_err());
    }

    #[test]
    fn fold_shipped_error_adds_codec_residual() {
        let mut ec = ErrorCompensator::new(CompensationMode::Raw, 4);
        // Round: delta [1, -2, 0.5, 0], sent the first two coordinates.
        ec.record(0, &[1.0, -2.0, 0.5, 0.0], &[1.0, -2.0, 0.0, 0.0], 1.0);
        // Wire codec delivered [0.9, -2.1] instead of [1.0, -2.0].
        ec.fold_shipped_error(0, &[0, 1], &[1.0, -2.0], &[0.9, -2.1]);
        let mut probe = vec![0.0f32; 4];
        ec.apply(0, &mut probe, 1.0);
        // Residual = (Δ − sent) + (sent − shipped) = Δ − shipped.
        assert!((probe[0] - 0.1).abs() < 1e-6);
        assert!((probe[1] - 0.1).abs() < 1e-6);
        assert_eq!(&probe[2..], &[0.5, 0.0]);
    }

    #[test]
    fn fold_shipped_error_without_memory_or_mode_is_inert() {
        // No memory stored: nothing to fold into.
        let mut ec = ErrorCompensator::new(CompensationMode::Raw, 2);
        ec.fold_shipped_error(7, &[0], &[1.0], &[0.5]);
        assert_eq!(ec.tracked_clients(), 0);
        // Mode None: inert even after a (no-op) record.
        let mut off = ErrorCompensator::new(CompensationMode::None, 2);
        off.record(0, &[1.0, 0.0], &[0.0, 0.0], 1.0);
        off.fold_shipped_error(0, &[0], &[1.0], &[0.5]);
        assert_eq!(off.tracked_clients(), 0);
    }

    #[test]
    #[should_panic(expected = "delta dimension mismatch")]
    fn dimension_mismatch_panics() {
        let mut ec = ErrorCompensator::new(CompensationMode::Raw, 2);
        let mut d = vec![0.0f32; 3];
        ec.apply(0, &mut d, 1.0);
    }
}
