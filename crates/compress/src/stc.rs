//! Sparse Ternary Compression (Sattler et al. 2019) primitives.
//!
//! STC (Algorithm 1 of the GlueFL paper) applies top-`q` sparsification on
//! both sides: clients upload `top_q(Δ_i)` and the server masks the
//! aggregate with another `top_q(·)` before broadcasting. The quantization
//! component (every kept value replaced by `sign·μ`) is orthogonal and is
//! provided separately, matching the paper's masking-only evaluation.

use gluefl_tensor::{top_k_abs, SparseUpdate, WireCost};

/// Number of coordinates kept by ratio `q` over dimension `dim`:
/// `round(q·dim)`, at least 1 for `q > 0`.
///
/// # Panics
/// Panics if `q` is outside `[0, 1]`.
///
/// # Example
/// ```
/// assert_eq!(gluefl_compress::stc::keep_count(1000, 0.2), 200);
/// assert_eq!(gluefl_compress::stc::keep_count(1000, 0.0), 0);
/// assert_eq!(gluefl_compress::stc::keep_count(5, 0.01), 1);
/// ```
#[must_use]
pub fn keep_count(dim: usize, q: f64) -> usize {
    assert!((0.0..=1.0).contains(&q), "ratio {q} outside [0,1]");
    if q == 0.0 || dim == 0 {
        return 0;
    }
    (((dim as f64) * q).round() as usize).clamp(1, dim)
}

/// Top-`q` sparsification: keeps the `round(q·dim)` largest-magnitude
/// coordinates of `delta` (STC's client- and server-side operator).
///
/// # Panics
/// Panics if `q` is outside `[0, 1]`.
///
/// # Example
/// ```
/// let u = gluefl_compress::stc::sparsify(&[0.1, -9.0, 0.2, 8.0], 0.5);
/// assert_eq!(u.indices(), &[1, 3]);
/// ```
#[must_use]
pub fn sparsify(delta: &[f32], q: f64) -> SparseUpdate {
    let k = keep_count(delta.len(), q);
    let idx = top_k_abs(delta, k);
    SparseUpdate::gather(delta, &idx)
}

/// A ternary-quantized sparse update: each kept value is replaced by
/// `sign(v) · mu`, with `mu` the mean kept magnitude (STC's quantizer).
#[derive(Debug, Clone, PartialEq)]
pub struct TernaryUpdate {
    /// Mean magnitude of the kept values.
    pub mu: f32,
    /// Sorted coordinate indices.
    pub indices: Vec<u32>,
    /// Signs aligned with `indices` (`true` = positive).
    pub signs: Vec<bool>,
    dim: usize,
}

impl TernaryUpdate {
    /// Quantizes a sparse update.
    #[must_use]
    pub fn quantize(update: &SparseUpdate) -> Self {
        let n = update.nnz().max(1);
        let mu = update.values().iter().map(|v| v.abs()).sum::<f32>() / n as f32;
        Self {
            mu,
            indices: update.indices().to_vec(),
            signs: update.values().iter().map(|&v| v >= 0.0).collect(),
            dim: update.dim(),
        }
    }

    /// Rebuilds a ternary update from its transported parts — the
    /// constructor for the wire decoder, which receives `mu`, the sorted
    /// indices, and the sign bits separately.
    ///
    /// # Panics
    /// Panics if `indices`/`signs` lengths differ, an index is `>= dim`,
    /// or the indices are not strictly increasing.
    #[must_use]
    pub fn from_parts(dim: usize, mu: f32, indices: Vec<u32>, signs: Vec<bool>) -> Self {
        assert_eq!(indices.len(), signs.len(), "indices/signs length mismatch");
        let mut prev: Option<u32> = None;
        for &i in &indices {
            assert!((i as usize) < dim, "index {i} out of range {dim}");
            if let Some(p) = prev {
                assert!(p < i, "indices must be sorted and unique");
            }
            prev = Some(i);
        }
        Self {
            mu,
            indices,
            signs,
            dim,
        }
    }

    /// Reconstructs the (lossy) sparse update `sign·mu`.
    #[must_use]
    pub fn dequantize(&self) -> SparseUpdate {
        let pairs = self
            .indices
            .iter()
            .zip(&self.signs)
            .map(|(&i, &s)| (i, if s { self.mu } else { -self.mu }))
            .collect();
        SparseUpdate::from_pairs(self.dim, pairs)
    }

    /// Number of kept coordinates.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Dimension of the underlying parameter vector.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Wire cost: positions as for any sparse payload, values as one sign
    /// bit each plus a single f32 `mu`.
    #[must_use]
    pub fn wire_cost(&self) -> WireCost {
        let positions = WireCost::sparse(self.dim, self.nnz()).position_bytes;
        WireCost {
            value_bytes: (self.nnz() as u64).div_ceil(8) + 4,
            position_bytes: positions,
            encoding: gluefl_tensor::WireEncoding::IndexList,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keep_count_boundaries() {
        assert_eq!(keep_count(10, 1.0), 10);
        assert_eq!(keep_count(10, 0.25), 3); // rounds 2.5 → 3 (round half up)
        assert_eq!(keep_count(0, 0.5), 0);
    }

    #[test]
    fn sparsify_keeps_largest() {
        let delta = vec![1.0f32, -5.0, 2.0, 4.0, -3.0];
        let u = sparsify(&delta, 0.4);
        assert_eq!(u.indices(), &[1, 3]);
        assert_eq!(u.values(), &[-5.0, 4.0]);
    }

    #[test]
    fn sparsify_q_one_is_identity_support() {
        let delta = vec![1.0f32, 0.0, 2.0];
        let u = sparsify(&delta, 1.0);
        assert_eq!(u.nnz(), 3);
        assert_eq!(u.to_dense(), delta);
    }

    #[test]
    fn sparsify_q_zero_is_empty() {
        assert!(sparsify(&[1.0, 2.0], 0.0).is_empty());
    }

    #[test]
    fn sparsified_energy_dominates() {
        // The kept coordinates carry at least q of the total L2 energy.
        let delta: Vec<f32> = (0..100)
            .map(|i| (i as f32 * 0.37).sin() * i as f32)
            .collect();
        let u = sparsify(&delta, 0.2);
        let kept: f64 = u
            .values()
            .iter()
            .map(|&v| f64::from(v) * f64::from(v))
            .sum();
        let total: f64 = delta.iter().map(|&v| f64::from(v) * f64::from(v)).sum();
        assert!(kept / total > 0.2);
    }

    #[test]
    fn ternary_roundtrip_preserves_signs_and_support() {
        let delta = vec![0.0f32, -5.0, 2.0, 4.0, -3.0, 0.1];
        let u = sparsify(&delta, 0.5);
        let t = TernaryUpdate::quantize(&u);
        let back = t.dequantize();
        assert_eq!(back.indices(), u.indices());
        for (orig, quant) in u.values().iter().zip(back.values()) {
            assert_eq!(orig.signum(), quant.signum());
            assert!((quant.abs() - t.mu).abs() < 1e-6);
        }
        // mu = mean kept magnitude.
        let mean: f32 = u.values().iter().map(|v| v.abs()).sum::<f32>() / u.nnz() as f32;
        assert!((t.mu - mean).abs() < 1e-6);
    }

    #[test]
    fn ternary_wire_cost_is_much_smaller() {
        let delta: Vec<f32> = (0..10_000).map(|i| (i as f32).sin()).collect();
        let u = sparsify(&delta, 0.1);
        let t = TernaryUpdate::quantize(&u);
        // 1000 f32 values = 4000 bytes vs 1000 sign bits = 125 + 4 bytes.
        assert_eq!(u.wire_cost().value_bytes, 4_000);
        assert_eq!(t.wire_cost().value_bytes, 129);
    }

    #[test]
    fn ternary_from_parts_round_trips_quantize() {
        let u = sparsify(&[0.0f32, -5.0, 2.0, 4.0], 0.75);
        let t = TernaryUpdate::quantize(&u);
        let rebuilt = TernaryUpdate::from_parts(t.dim(), t.mu, t.indices.clone(), t.signs.clone());
        assert_eq!(rebuilt, t);
    }

    #[test]
    #[should_panic(expected = "sorted and unique")]
    fn ternary_from_parts_rejects_unsorted() {
        let _ = TernaryUpdate::from_parts(5, 1.0, vec![3, 1], vec![true, false]);
    }

    #[test]
    fn ternary_of_empty_update() {
        let u = SparseUpdate::empty(5);
        let t = TernaryUpdate::quantize(&u);
        assert_eq!(t.nnz(), 0);
        assert!(t.dequantize().is_empty());
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn sparsify_rejects_bad_ratio() {
        let _ = sparsify(&[1.0], 1.5);
    }
}
