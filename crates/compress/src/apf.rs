//! Adaptive Parameter Freezing (Chen et al., ICDCS 2021).
//!
//! APF observes the aggregated global update each round and freezes
//! parameters that have *converged*: a parameter whose updates keep
//! cancelling out (small *effective perturbation*) is frozen — excluded
//! from synchronisation — for a freezing period that doubles each time the
//! parameter is found stable again, and is re-examined when the period
//! expires. The GlueFL paper uses APF as its parameter-freezing baseline
//! with the effective-perturbation threshold set to 0.1 (§5.1).

use gluefl_tensor::BitMask;

/// APF hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApfConfig {
    /// Effective-perturbation threshold below which a parameter is frozen
    /// (paper setting: 0.1).
    pub threshold: f32,
    /// EMA factor for the update statistics (0.9 ≈ a ~10-round window).
    pub ema_beta: f32,
    /// Initial freeze duration in rounds.
    pub initial_period: u32,
    /// Cap on the doubling freeze duration.
    pub max_period: u32,
    /// Rounds of warm-up before any freezing happens.
    pub warmup_rounds: u32,
}

impl Default for ApfConfig {
    fn default() -> Self {
        Self {
            threshold: 0.1,
            ema_beta: 0.9,
            initial_period: 5,
            max_period: 40,
            warmup_rounds: 10,
        }
    }
}

/// Server-side APF state.
///
/// Call [`Apf::active_mask`] to learn which parameters participate in the
/// current round, and [`Apf::observe`] with the aggregated update (dense,
/// zeros at frozen positions) to advance the freezing state machine.
///
/// # Example
///
/// ```
/// use gluefl_compress::{Apf, ApfConfig};
/// let mut apf = Apf::new(4, ApfConfig::default());
/// // Initially everything is active.
/// assert_eq!(apf.active_mask().count_ones(), 4);
/// apf.observe(&[0.1, -0.1, 0.5, 0.0]);
/// ```
#[derive(Debug, Clone)]
pub struct Apf {
    cfg: ApfConfig,
    /// EMA of signed updates.
    ema_update: Vec<f32>,
    /// EMA of |updates|.
    ema_abs: Vec<f32>,
    /// Round until which each parameter is frozen (exclusive).
    frozen_until: Vec<u32>,
    /// Current freeze period per parameter.
    period: Vec<u32>,
    round: u32,
}

impl Apf {
    /// Creates APF state over `dim` parameters.
    ///
    /// # Panics
    /// Panics if `threshold` is not in `(0, 1]` or `ema_beta` not in `[0,1)`.
    #[must_use]
    pub fn new(dim: usize, cfg: ApfConfig) -> Self {
        assert!(
            cfg.threshold > 0.0 && cfg.threshold <= 1.0,
            "threshold must be in (0,1]"
        );
        assert!(
            (0.0..1.0).contains(&cfg.ema_beta),
            "ema_beta must be in [0,1)"
        );
        Self {
            cfg,
            ema_update: vec![0.0; dim],
            ema_abs: vec![0.0; dim],
            frozen_until: vec![0; dim],
            period: vec![cfg.initial_period; dim],
            round: 0,
        }
    }

    /// Model dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.ema_update.len()
    }

    /// Current round index (number of `observe` calls so far).
    #[must_use]
    pub fn round(&self) -> u32 {
        self.round
    }

    /// Mask of parameters that are *active* (not frozen) this round.
    #[must_use]
    pub fn active_mask(&self) -> BitMask {
        let mut m = BitMask::zeros(self.dim());
        self.fill_active_mask(&mut m);
        m
    }

    /// Writes the current active mask into `out` in place (reset to the
    /// model dimension first) — the allocation-free form used by callers
    /// that cache the mask across rounds.
    pub fn fill_active_mask(&self, out: &mut BitMask) {
        out.reset(self.dim());
        for i in 0..self.dim() {
            if self.frozen_until[i] <= self.round {
                out.set(i, true);
            }
        }
    }

    /// Fraction of parameters currently frozen.
    #[must_use]
    pub fn frozen_fraction(&self) -> f64 {
        let frozen = self
            .frozen_until
            .iter()
            .filter(|&&until| until > self.round)
            .count();
        frozen as f64 / self.dim().max(1) as f64
    }

    /// Effective perturbation of parameter `i`:
    /// `|EMA(update)| / EMA(|update|)` ∈ [0, 1]. High values mean the
    /// parameter still moves consistently in one direction; low values
    /// mean its updates cancel out (converged / oscillating).
    #[must_use]
    pub fn effective_perturbation(&self, i: usize) -> f32 {
        let denom = self.ema_abs[i];
        if denom <= f32::EPSILON {
            // No signal yet: treat as maximally unstable so we never
            // freeze an unobserved parameter.
            1.0
        } else {
            (self.ema_update[i].abs() / denom).min(1.0)
        }
    }

    /// Feeds the round's aggregated update (dense over all positions;
    /// frozen positions should be zero) and advances the state machine.
    ///
    /// For each *active* parameter the EMAs are updated; when the warm-up
    /// has passed and the effective perturbation falls below the
    /// threshold, the parameter is frozen for its current period and the
    /// period doubles (capped) — APF's additively-increasing/multiplicative
    /// freezing schedule. A frozen parameter whose period expires becomes
    /// active again and is re-examined with fresh updates; its period
    /// stays at the doubled value (the paper's conservative variant caps
    /// rather than resets, which we mirror).
    ///
    /// # Panics
    /// Panics if `update.len() != dim()`.
    #[allow(clippy::needless_range_loop)] // i indexes four parallel arrays
    pub fn observe(&mut self, update: &[f32]) {
        assert_eq!(update.len(), self.dim(), "update dimension mismatch");
        let beta = self.cfg.ema_beta;
        for i in 0..self.dim() {
            if self.frozen_until[i] > self.round {
                continue; // frozen: statistics paused
            }
            self.observe_position(i, update[i], beta);
        }
        self.round += 1;
    }

    /// Packed-layout form of [`Apf::observe`]: the round's aggregated
    /// update is given as values packed over `active` (one value per set
    /// bit, in position order), which must be exactly the mask
    /// [`Apf::active_mask`] returned for this round. Frozen positions —
    /// the complement of `active` — receive no statistics update, exactly
    /// as in the dense form, so the two are state-identical.
    ///
    /// # Panics
    /// Panics if `active.len() != dim()` or `packed.len()` differs from
    /// the mask's set-bit count; debug builds also verify that `active`
    /// matches the internal freeze state.
    pub fn observe_masked(&mut self, packed: &[f32], active: &BitMask) {
        assert_eq!(active.len(), self.dim(), "active mask dimension mismatch");
        assert_eq!(
            packed.len(),
            active.count_ones(),
            "packed values must align with the active mask"
        );
        // Subset check happens per bit below; the count equality makes it
        // a full equivalence — a too-narrow mask would silently starve
        // thawed positions of their EMA update.
        debug_assert_eq!(
            active.count_ones(),
            self.frozen_until
                .iter()
                .filter(|&&u| u <= self.round)
                .count(),
            "active mask does not cover every unfrozen position"
        );
        let beta = self.cfg.ema_beta;
        let mut j = 0usize;
        active.for_each_one(|i| {
            debug_assert!(
                self.frozen_until[i] <= self.round,
                "active mask covers a frozen position"
            );
            let v = packed[j];
            j += 1;
            self.observe_position(i, v, beta);
        });
        self.round += 1;
    }

    /// One active parameter's EMA update + freeze decision (shared by the
    /// dense and packed observe forms).
    fn observe_position(&mut self, i: usize, update: f32, beta: f32) {
        self.ema_update[i] = beta * self.ema_update[i] + (1.0 - beta) * update;
        self.ema_abs[i] = beta * self.ema_abs[i] + (1.0 - beta) * update.abs();
        if self.round >= self.cfg.warmup_rounds
            && self.effective_perturbation(i) < self.cfg.threshold
        {
            self.frozen_until[i] = self.round + 1 + self.period[i];
            self.period[i] = (self.period[i] * 2).min(self.cfg.max_period);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ApfConfig {
        // ema_beta 0.9: an alternating ±u signal settles at
        // |EMA| = u·(1−β)/(1+β) ≈ 0.053·u, i.e. EP ≈ 0.053 < 0.1,
        // while a steady signal keeps EP = 1.
        ApfConfig {
            threshold: 0.1,
            ema_beta: 0.9,
            initial_period: 3,
            max_period: 12,
            warmup_rounds: 4,
        }
    }

    #[test]
    fn nothing_frozen_during_warmup() {
        let mut apf = Apf::new(8, cfg());
        for _ in 0..4 {
            // Pure oscillation (EP → 0), but warm-up protects it.
            apf.observe(&[0.5; 8]);
            apf.observe(&[-0.5; 8].map(|v: f32| v));
        }
        // Warm-up of 4 rounds passed after the loop; some freezing may now
        // occur, but strictly within the first 4 observes nothing froze:
        let mut apf2 = Apf::new(8, cfg());
        for r in 0..4 {
            apf2.observe(&[if r % 2 == 0 { 0.5 } else { -0.5 }; 8]);
            assert_eq!(apf2.active_mask().count_ones(), 8, "round {r}");
        }
    }

    #[test]
    fn oscillating_parameters_freeze() {
        let mut apf = Apf::new(4, cfg());
        // Parameter 0 oscillates (converged); parameter 1 moves steadily.
        for r in 0..20 {
            let u0 = if r % 2 == 0 { 0.5 } else { -0.5 };
            let mut u = vec![0.0f32; 4];
            if apf.active_mask().get(0) {
                u[0] = u0;
            }
            if apf.active_mask().get(1) {
                u[1] = 0.5;
            }
            apf.observe(&u);
        }
        assert!(
            apf.frozen_fraction() > 0.0,
            "oscillating parameter never froze"
        );
        // The steadily-moving parameter must stay active.
        assert!(apf.active_mask().get(1), "steady parameter was frozen");
    }

    #[test]
    fn frozen_parameters_thaw_after_period() {
        let mut apf = Apf::new(1, cfg());
        // Drive EP below threshold right after warm-up.
        for r in 0..6 {
            let u = if r % 2 == 0 { 1.0 } else { -1.0 };
            apf.observe(&[if apf.active_mask().get(0) { u } else { 0.0 }]);
        }
        // Find the freeze.
        let mut frozen_seen = false;
        let mut thawed_after = None;
        for r in 0..30 {
            if !apf.active_mask().get(0) {
                frozen_seen = true;
            } else if frozen_seen {
                thawed_after = Some(r);
                break;
            }
            apf.observe(&[0.0]);
        }
        assert!(frozen_seen, "parameter never froze");
        assert!(thawed_after.is_some(), "parameter never thawed");
    }

    #[test]
    fn freeze_period_doubles_and_caps() {
        let mut apf = Apf::new(1, cfg());
        let mut freeze_lengths = Vec::new();
        let mut current: Option<u32> = None;
        for r in 0..200u32 {
            let active = apf.active_mask().get(0);
            match (&mut current, active) {
                (None, false) => current = Some(1),
                (Some(len), false) => *len += 1,
                (Some(len), true) => {
                    freeze_lengths.push(*len);
                    current = None;
                }
                (None, true) => {}
            }
            // While active, oscillate hard so it re-freezes immediately.
            let u = if r % 2 == 0 { 1.0 } else { -1.0 };
            apf.observe(&[if active { u } else { 0.0 }]);
        }
        assert!(freeze_lengths.len() >= 3, "freezes: {freeze_lengths:?}");
        // Non-decreasing, eventually capped at max_period.
        for w in freeze_lengths.windows(2) {
            assert!(w[1] >= w[0], "periods shrank: {freeze_lengths:?}");
        }
        assert!(
            freeze_lengths.iter().max().unwrap() <= &(cfg().max_period + 1),
            "period exceeded cap: {freeze_lengths:?}"
        );
    }

    #[test]
    fn observe_masked_is_state_identical_to_dense_observe() {
        let mut dense_apf = Apf::new(6, cfg());
        let mut packed_apf = Apf::new(6, cfg());
        for r in 0..30 {
            // Oscillate half the parameters so freezes actually happen.
            let active = dense_apf.active_mask();
            assert_eq!(active, packed_apf.active_mask());
            let sign = if r % 2 == 0 { 1.0 } else { -1.0 };
            let mut update = vec![0.0f32; 6];
            for (i, u) in update.iter_mut().enumerate() {
                if active.get(i) {
                    *u = if i < 3 { sign * 0.5 } else { 0.5 };
                }
            }
            let packed: Vec<f32> = active.iter_ones().map(|i| update[i]).collect();
            dense_apf.observe(&update);
            packed_apf.observe_masked(&packed, &active);
            for i in 0..6 {
                assert_eq!(
                    dense_apf.effective_perturbation(i).to_bits(),
                    packed_apf.effective_perturbation(i).to_bits(),
                    "round {r} position {i}"
                );
            }
        }
        assert!(dense_apf.frozen_fraction() > 0.0);
        assert_eq!(dense_apf.frozen_fraction(), packed_apf.frozen_fraction());
    }

    #[test]
    fn fill_active_mask_matches_active_mask() {
        let mut apf = Apf::new(4, cfg());
        for r in 0..12 {
            let u = if r % 2 == 0 { 0.7 } else { -0.7 };
            let m = apf.active_mask();
            let packed: Vec<f32> = m.iter_ones().map(|_| u).collect();
            apf.observe_masked(&packed, &m);
        }
        let mut out = gluefl_tensor::BitMask::zeros(1);
        apf.fill_active_mask(&mut out);
        assert_eq!(out, apf.active_mask());
    }

    #[test]
    fn effective_perturbation_of_steady_signal_is_one() {
        let mut apf = Apf::new(1, cfg());
        for _ in 0..10 {
            apf.observe(&[0.3]);
        }
        assert!((apf.effective_perturbation(0) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn unobserved_parameter_is_never_frozen() {
        let mut apf = Apf::new(2, cfg());
        for _ in 0..30 {
            let m = apf.active_mask();
            let mut u = vec![0.0f32; 2];
            if m.get(0) {
                u[0] = 0.0;
            } // param 0 receives exactly zero updates
            if m.get(1) {
                u[1] = 0.4;
            }
            apf.observe(&u);
        }
        // A zero-update parameter has no |update| signal → EP = 1 → active.
        assert!(apf.active_mask().get(0));
    }

    #[test]
    #[should_panic(expected = "update dimension mismatch")]
    fn observe_dimension_mismatch_panics() {
        let mut apf = Apf::new(2, cfg());
        apf.observe(&[0.0; 3]);
    }

    #[test]
    #[should_panic(expected = "threshold must be in (0,1]")]
    fn rejects_bad_threshold() {
        let _ = Apf::new(
            1,
            ApfConfig {
                threshold: 0.0,
                ..cfg()
            },
        );
    }
}
