//! Property-based tests for compression invariants.

use gluefl_compress::mask_shift::{client_split, min_update_overlap, shift_mask};
use gluefl_compress::stc::{keep_count, sparsify, TernaryUpdate};
use gluefl_compress::{CompensationMode, ErrorCompensator};
use gluefl_tensor::BitMask;
use proptest::prelude::*;

fn delta_vec() -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-10.0f32..10.0, 1..300)
}

proptest! {
    /// keep_count is monotone in q and bounded by dim.
    #[test]
    fn keep_count_monotone(dim in 0usize..10_000, q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(keep_count(dim, lo) <= keep_count(dim, hi));
        prop_assert!(keep_count(dim, hi) <= dim);
    }

    /// Sparsify keeps exactly keep_count coordinates and its support is a
    /// subset of the original nonzeros whenever enough nonzeros exist.
    #[test]
    fn sparsify_cardinality(delta in delta_vec(), q in 0.0f64..=1.0) {
        let u = sparsify(&delta, q);
        prop_assert_eq!(u.nnz(), keep_count(delta.len(), q));
    }

    /// Ternary quantization preserves support and signs; dequantized
    /// magnitudes all equal μ ≥ 0.
    #[test]
    fn ternary_preserves_signs(delta in delta_vec(), q in 0.01f64..=1.0) {
        let u = sparsify(&delta, q);
        let t = TernaryUpdate::quantize(&u);
        let back = t.dequantize();
        prop_assert_eq!(back.indices(), u.indices());
        prop_assert!(t.mu >= 0.0);
        for (orig, quant) in u.values().iter().zip(back.values()) {
            if *orig != 0.0 && t.mu > 0.0 {
                prop_assert_eq!(orig.signum(), quant.signum());
            }
            prop_assert!((quant.abs() - t.mu).abs() < 1e-6);
        }
    }

    /// Quantization never increases the wire size.
    #[test]
    fn ternary_never_costs_more(delta in delta_vec(), q in 0.01f64..=1.0) {
        let u = sparsify(&delta, q);
        let t = TernaryUpdate::quantize(&u);
        prop_assert!(t.wire_cost().total_bytes() <= u.wire_cost().total_bytes() + 4);
    }

    /// client_split: shared ∪ unique supports are disjoint, shared support
    /// equals the mask, and reconstruction agrees with the inputs.
    #[test]
    fn client_split_partition(delta in delta_vec(),
                              mask_bits in proptest::collection::vec(any::<bool>(), 1..300),
                              k in 0usize..50) {
        let n = delta.len().min(mask_bits.len());
        let delta = &delta[..n];
        let mask = BitMask::from_indices(n, (0..n).filter(|&i| mask_bits[i]));
        let split = client_split(delta, &mask, k);
        prop_assert_eq!(split.shared.support(), mask.clone());
        prop_assert_eq!(split.unique.support().overlap(&mask), 0);
        // Unique cardinality: min(k, positions outside the mask).
        let outside = n - mask.count_ones();
        prop_assert_eq!(split.unique.nnz(), k.min(outside));
        // Values are copied verbatim.
        for (i, v) in split.shared.iter().chain(split.unique.iter()) {
            prop_assert_eq!(v, delta[i]);
        }
    }

    /// shift_mask density equals keep_count(q_shr) and respects the
    /// eligibility restriction.
    #[test]
    fn shift_mask_density(delta in delta_vec(), q_shr in 0.0f64..=1.0,
                          elig_bits in proptest::collection::vec(any::<bool>(), 1..300)) {
        let n = delta.len().min(elig_bits.len());
        let delta = &delta[..n];
        let eligible = BitMask::from_indices(n, (0..n).filter(|&i| elig_bits[i]));
        let m = shift_mask(delta, q_shr, Some(&eligible));
        let want = keep_count(n, q_shr).min(eligible.count_ones());
        prop_assert_eq!(m.count_ones(), want);
        prop_assert_eq!(m.and_not(&eligible).count_ones(), 0, "mask escaped eligibility");
        prop_assert_eq!(min_update_overlap(n, q_shr), keep_count(n, q_shr));
    }

    /// Error-feedback invariant: at any point, total-sent + residual ==
    /// total-delta, for arbitrary delta/compression sequences (Raw mode).
    #[test]
    fn error_feedback_telescopes(
        deltas in proptest::collection::vec(
            proptest::collection::vec(-5.0f32..5.0, 8), 1..12),
        kept_low in 0usize..8) {
        let dim = 8;
        let mut ec = ErrorCompensator::new(CompensationMode::Raw, dim);
        let mut sent_total = vec![0.0f64; dim];
        let mut delta_total = vec![0.0f64; dim];
        for delta in &deltas {
            let mut d = delta.clone();
            ec.apply(0, &mut d, 1.0);
            // "Compression": keep an arbitrary prefix of coordinates.
            let mut sent = vec![0.0f32; dim];
            sent[..kept_low].copy_from_slice(&d[..kept_low]);
            ec.record(0, &d, &sent, 1.0);
            for i in 0..dim {
                sent_total[i] += f64::from(sent[i]);
                delta_total[i] += f64::from(delta[i]);
            }
        }
        let mut probe = vec![0.0f32; dim];
        ec.apply(0, &mut probe, 1.0);
        for i in 0..dim {
            let residual = f64::from(probe[i]);
            prop_assert!(
                (residual - (delta_total[i] - sent_total[i])).abs() < 1e-3,
                "coordinate {}: residual {} vs ledger {}",
                i, residual, delta_total[i] - sent_total[i]
            );
        }
    }

    /// Rescaled compensation: aggregation-weighted contribution of the
    /// residual is invariant to the weight at re-injection time.
    #[test]
    fn rescaled_compensation_weight_invariance(
        residual in -5.0f32..5.0, w_old in 0.1f64..10.0, w_new in 0.1f64..10.0) {
        let mut ec = ErrorCompensator::new(CompensationMode::Rescaled, 1);
        ec.record(0, &[residual], &[0.0], w_old);
        let mut d = vec![0.0f32];
        ec.apply(0, &mut d, w_new);
        // Server-side contribution: ν_new · re-scaled residual == ν_old · h.
        let contribution = w_new * f64::from(d[0]);
        prop_assert!((contribution - w_old * f64::from(residual)).abs() < 1e-3);
    }
}
